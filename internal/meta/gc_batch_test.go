package meta_test

import (
	"testing"

	"repro/internal/meta"
)

// TestGCWalkRPCBound asserts the batched liveness walk's cost bound: a
// full-floor walk of a 256-chunk tree against M metadata providers issues
// at most M × tree-depth meta.getnodes RPCs and — with no holes in the
// tree — zero singleton meta.get fallbacks. (The node-at-a-time walker
// this replaced paid one RPC per node: ~511 for this tree.)
func TestGCWalkRPCBound(t *testing.T) {
	const m, size = 4, 256
	rig := startMetaRig(t, m, 1, 0)
	const blob = 21
	weaveRefHistory(t, rig.client, blob, []refWrite{
		{version: 1, start: 0, end: size, sizeChunks: size},
		{version: 2, start: 64, end: 192, sizeChunks: size},
	})

	walker := newReaderClient(t, rig, 1, 0)
	live, err := meta.CollectLive(walker, blob, 2, size)
	if err != nil {
		t.Fatal(err)
	}
	if len(live.Chunks) != size {
		t.Fatalf("live walk found %d chunks, want %d", len(live.Chunks), size)
	}
	stats := walker.RPCStats()
	bound := int64(m * treeDepth(size))
	if stats.GetNodesRPCs > bound {
		t.Errorf("full-floor walk issued %d meta.getnodes RPCs, bound %d", stats.GetNodesRPCs, bound)
	}
	if stats.GetRPCs != 0 {
		t.Errorf("walk of an intact tree fell back to %d singleton meta.get RPCs", stats.GetRPCs)
	}
	t.Logf("CollectLive: %d getnodes RPCs (bound %d) for %d nodes", stats.GetNodesRPCs, bound, len(live.Nodes))

	// AddOwned over the overwrite version obeys the same bound.
	before := stats.GetNodesRPCs
	if err := live.AddOwned(walker, blob, 2, size); err != nil {
		t.Fatal(err)
	}
	stats = walker.RPCStats()
	if got := stats.GetNodesRPCs - before; got > bound {
		t.Errorf("owned walk issued %d meta.getnodes RPCs, bound %d", got, bound)
	}
	if stats.GetRPCs != 0 {
		t.Errorf("owned walk fell back to %d singleton meta.get RPCs", stats.GetRPCs)
	}
}

// TestGCWalkHoleSkippedWithoutError deletes one inner node from every
// replica — the definitive hole a crashed abort-repair leaves — and
// checks the batched walk still distinguishes it correctly: the walk
// completes, the hole's subtree contributes nothing, and everything
// outside it is collected.
func TestGCWalkHoleSkippedWithoutError(t *testing.T) {
	const size = 8
	rig := startMetaRig(t, 3, 1, 0)
	const blob = 22
	weaveRefHistory(t, rig.client, blob, []refWrite{{version: 1, start: 0, end: size, sizeChunks: size}})

	// Kill the left half's inner node on every DHT member.
	hole := meta.NodeKey{Blob: blob, Version: 1, Off: 0, Size: 4}
	if _, err := rig.client.DeleteNodes([]meta.NodeKey{hole}); err != nil {
		t.Fatal(err)
	}

	walker := newReaderClient(t, rig, 1, 0)
	live, err := meta.CollectLive(walker, blob, 1, size)
	if err != nil {
		t.Fatalf("walk over a definitive hole must succeed: %v", err)
	}
	if live.Has(hole) {
		t.Error("hole collected as live")
	}
	for idx := uint64(4); idx < size; idx++ {
		if !live.Has(meta.NodeKey{Blob: blob, Version: 1, Off: idx, Size: 1}) {
			t.Errorf("leaf %d outside the hole not collected", idx)
		}
	}
	if len(live.Chunks) != 4 {
		t.Errorf("collected %d chunks, want 4 (right half only)", len(live.Chunks))
	}
}

// TestGCWalkUnreachableAborts downs one metadata provider (replication 1,
// so its nodes are simply unreachable, not absent) and checks the batched
// walk refuses to complete: confusing "unreachable" with "absent" would
// let the sweep delete data retained snapshots still reference.
func TestGCWalkUnreachableAborts(t *testing.T) {
	const size = 64
	rig := startMetaRig(t, 2, 1, 0)
	const blob = 23
	weaveRefHistory(t, rig.client, blob, []refWrite{{version: 1, start: 0, end: size, sizeChunks: size}})

	rig.fabric.SetDown(rig.addrs[0], true)
	walker := newReaderClient(t, rig, 1, 0)
	if _, err := meta.CollectLive(walker, blob, 1, size); err == nil {
		t.Fatal("walk with an unreachable replica reported a complete live set")
	}
}

// TestSpeculationTelemetry checks the exported same-label expansion
// counters: a single-writer tree is uniformly labeled (every speculative
// key resolves — no misses), while a fragmented history must record the
// wasted lookups as misses.
func TestSpeculationTelemetry(t *testing.T) {
	const size = 64
	rig := startMetaRig(t, 3, 1, 0)
	const blob = 24
	weaveRefHistory(t, rig.client, blob, []refWrite{{version: 1, start: 0, end: size, sizeChunks: size}})

	uniform := newReaderClient(t, rig, 1, 0)
	if _, err := meta.CollectLeaves(uniform, blob, 1, size, 0, size); err != nil {
		t.Fatal(err)
	}
	st := uniform.RPCStats()
	if st.SpecHits == 0 {
		t.Error("uniform tree recorded no speculation hits")
	}
	if st.SpecMisses != 0 {
		t.Errorf("uniform tree recorded %d speculation misses", st.SpecMisses)
	}

	weaveRefHistory(t, rig.client, blob, []refWrite{
		{version: 2, start: 0, end: 16, sizeChunks: size},
		{version: 3, start: 48, end: 64, sizeChunks: size},
	})
	frag := newReaderClient(t, rig, 1, 0)
	if _, err := meta.CollectLeaves(frag, blob, 3, size, 0, size); err != nil {
		t.Fatal(err)
	}
	st = frag.RPCStats()
	if st.SpecMisses == 0 {
		t.Error("fragmented history recorded no speculation misses")
	}
	t.Logf("uniform: %d hits; fragmented: %d hits / %d misses",
		uniform.RPCStats().SpecHits, st.SpecHits, st.SpecMisses)
}
