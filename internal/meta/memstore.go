package meta

import (
	"fmt"
	"slices"
	"sync"
)

// MemStore is a process-local Store used by tests and by single-process
// deployments that do not need a metadata DHT.
type MemStore struct {
	mu    sync.RWMutex
	nodes map[NodeKey]*Node
}

// NewMemStore returns an empty in-memory node store.
func NewMemStore() *MemStore {
	return &MemStore{nodes: make(map[NodeKey]*Node)}
}

// PutNodes stores the batch. Re-storing an existing key with identical
// content is tolerated (idempotent retries); a conflicting rewrite is a
// protocol violation and returns an error — EXCEPT when the divergence is
// only a leaf's replica list: the repair engine patches those in place
// (see PatchReplicas), so a writer's late idempotent retry carrying the
// pre-patch placement must not error, and must not clobber the patch
// either. The stored (patched) leaf wins.
func (s *MemStore) PutNodes(nodes []*Node) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, n := range nodes {
		if old, ok := s.nodes[n.Key]; ok {
			if !nodesEquivalent(old, n) {
				return fmt.Errorf("meta: conflicting rewrite of immutable node %s", n.Key)
			}
			continue
		}
		cp := *n
		s.nodes[n.Key] = &cp
	}
	return nil
}

// PatchReplicas rewrites leaf replica lists in place (ServerStore; see
// ReplicaPatch). A patch applies only to an existing leaf that still
// references the named chunk; anything else is skipped, not an error.
func (s *MemStore) PatchReplicas(patches []ReplicaPatch) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for i := range patches {
		p := &patches[i]
		if len(p.Providers) == 0 {
			// An empty replica list would flip the leaf to IsZero — reads
			// would synthesize zeros and the GC liveness walk would stop
			// protecting the chunk's bytes. No legitimate patch empties a
			// placement (repair skips no-survivor chunks), so this can
			// only be corruption (the decoder clamps hostile provider
			// counts to zero) or a bug: refuse it.
			continue
		}
		old, ok := s.nodes[p.Key]
		if !ok || !old.Leaf || old.Chunk.Key != p.Chunk {
			continue
		}
		if slices.Equal(old.Chunk.Providers, p.Providers) {
			continue // idempotent re-patch
		}
		cp := *old
		cp.Chunk.Providers = append([]string(nil), p.Providers...)
		s.nodes[p.Key] = &cp
		n++
	}
	return n
}

// GetNode fetches one node.
func (s *MemStore) GetNode(key NodeKey) (*Node, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.nodes[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNodeNotFound, key)
	}
	cp := *n
	return &cp, nil
}

// GetNodes fetches a batch under one lock acquisition. Entries for absent
// keys are nil.
func (s *MemStore) GetNodes(keys []NodeKey) ([]*Node, error) {
	out := make([]*Node, len(keys))
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i, k := range keys {
		if n, ok := s.nodes[k]; ok {
			cp := *n
			out[i] = &cp
		}
	}
	return out, nil
}

// PeekNodes implements Peeker: the whole store is local, so peeking is
// just GetNodes — descents over a MemStore never leave process memory.
func (s *MemStore) PeekNodes(keys []NodeKey) []*Node {
	out, _ := s.GetNodes(keys)
	return out
}

// Len reports the number of stored nodes.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.nodes)
}

// DeleteNodes removes the given keys (absent keys are ignored: deletes are
// idempotent and replicas may hold different subsets). It returns how many
// nodes were actually dropped.
func (s *MemStore) DeleteNodes(keys []NodeKey) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, k := range keys {
		if _, ok := s.nodes[k]; ok {
			delete(s.nodes, k)
			n++
		}
	}
	return n
}

// Snapshot returns a copy of every stored node (persistence snapshots).
func (s *MemStore) Snapshot() []*Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Node, 0, len(s.nodes))
	for _, n := range s.nodes {
		cp := *n
		out = append(out, &cp)
	}
	return out
}

// DeleteBlob removes every node of one blob (full blob deletion), returning
// the number dropped.
func (s *MemStore) DeleteBlob(blob uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for k := range s.nodes {
		if k.Blob == blob {
			delete(s.nodes, k)
			n++
		}
	}
	return n
}

// nodesEqual is strict content equality (codec round-trip tests).
func nodesEqual(a, b *Node) bool {
	return nodesEquivalent(a, b) && (!a.Leaf || slices.Equal(a.Chunk.Providers, b.Chunk.Providers))
}

// nodesEquivalent reports whether b may be idempotently dropped when a is
// already stored: identical content, except that leaf PROVIDER LISTS may
// differ (replica placement is repair-mutable state, not node identity).
func nodesEquivalent(a, b *Node) bool {
	if a.Key != b.Key || a.Leaf != b.Leaf {
		return false
	}
	if a.Leaf {
		return a.Chunk.Key == b.Chunk.Key && a.Chunk.Length == b.Chunk.Length &&
			a.Chunk.IsZero() == b.Chunk.IsZero()
	}
	return a.LeftVer == b.LeftVer && a.RightVer == b.RightVer
}
