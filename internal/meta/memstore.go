package meta

import (
	"fmt"
	"sync"
)

// MemStore is a process-local Store used by tests and by single-process
// deployments that do not need a metadata DHT.
type MemStore struct {
	mu    sync.RWMutex
	nodes map[NodeKey]*Node
}

// NewMemStore returns an empty in-memory node store.
func NewMemStore() *MemStore {
	return &MemStore{nodes: make(map[NodeKey]*Node)}
}

// PutNodes stores the batch. Re-storing an existing key with identical
// content is tolerated (idempotent retries); a conflicting rewrite is a
// protocol violation and returns an error.
func (s *MemStore) PutNodes(nodes []*Node) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, n := range nodes {
		if old, ok := s.nodes[n.Key]; ok {
			if !nodesEqual(old, n) {
				return fmt.Errorf("meta: conflicting rewrite of immutable node %s", n.Key)
			}
			continue
		}
		cp := *n
		s.nodes[n.Key] = &cp
	}
	return nil
}

// GetNode fetches one node.
func (s *MemStore) GetNode(key NodeKey) (*Node, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.nodes[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNodeNotFound, key)
	}
	cp := *n
	return &cp, nil
}

// GetNodes fetches a batch under one lock acquisition. Entries for absent
// keys are nil.
func (s *MemStore) GetNodes(keys []NodeKey) ([]*Node, error) {
	out := make([]*Node, len(keys))
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i, k := range keys {
		if n, ok := s.nodes[k]; ok {
			cp := *n
			out[i] = &cp
		}
	}
	return out, nil
}

// PeekNodes implements Peeker: the whole store is local, so peeking is
// just GetNodes — descents over a MemStore never leave process memory.
func (s *MemStore) PeekNodes(keys []NodeKey) []*Node {
	out, _ := s.GetNodes(keys)
	return out
}

// Len reports the number of stored nodes.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.nodes)
}

// DeleteNodes removes the given keys (absent keys are ignored: deletes are
// idempotent and replicas may hold different subsets). It returns how many
// nodes were actually dropped.
func (s *MemStore) DeleteNodes(keys []NodeKey) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, k := range keys {
		if _, ok := s.nodes[k]; ok {
			delete(s.nodes, k)
			n++
		}
	}
	return n
}

// Snapshot returns a copy of every stored node (persistence snapshots).
func (s *MemStore) Snapshot() []*Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Node, 0, len(s.nodes))
	for _, n := range s.nodes {
		cp := *n
		out = append(out, &cp)
	}
	return out
}

// DeleteBlob removes every node of one blob (full blob deletion), returning
// the number dropped.
func (s *MemStore) DeleteBlob(blob uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for k := range s.nodes {
		if k.Blob == blob {
			delete(s.nodes, k)
			n++
		}
	}
	return n
}

func nodesEqual(a, b *Node) bool {
	if a.Key != b.Key || a.Leaf != b.Leaf {
		return false
	}
	if a.Leaf {
		if a.Chunk.Key != b.Chunk.Key || a.Chunk.Length != b.Chunk.Length ||
			len(a.Chunk.Providers) != len(b.Chunk.Providers) {
			return false
		}
		for i := range a.Chunk.Providers {
			if a.Chunk.Providers[i] != b.Chunk.Providers[i] {
				return false
			}
		}
		return true
	}
	return a.LeftVer == b.LeftVer && a.RightVer == b.RightVer
}
