package meta_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/chunk"
	"repro/internal/meta"
	"repro/internal/rpc"
)

// newReaderClient builds a fresh metadata client over the rig's providers
// — with its own empty cache — so reads start cold no matter what the
// rig's writer client has cached.
func newReaderClient(t *testing.T, rig *metaRig, replication, cacheNodes int) *meta.Client {
	t.Helper()
	cli := rpc.NewClient(rig.network, 5*time.Second)
	t.Cleanup(cli.Close)
	return meta.NewClient(cli, rig.addrs, replication, cacheNodes)
}

// refWrite is one write of a generated history.
type refWrite struct {
	version    uint64
	start, end uint64
	sizeChunks uint64
}

// weaveRefHistory weaves a sequentially published history into store.
func weaveRefHistory(t *testing.T, store meta.Store, blob uint64, history []refWrite) {
	t.Helper()
	pubVersion, pubSize := uint64(0), uint64(0)
	for _, w := range history {
		leaves := make([]meta.ChunkRef, w.end-w.start)
		for i := range leaves {
			leaves[i] = meta.ChunkRef{
				Providers: []string{"dp"},
				Key:       chunk.Key{Blob: blob, Version: w.version, Index: w.start + uint64(i)},
				Length:    100,
			}
		}
		nodes, _, err := meta.Weave(store, meta.WeaveInput{
			Blob: blob, Version: w.version,
			StartChunk: w.start, EndChunk: w.end, SizeChunks: w.sizeChunks,
			Leaves:     leaves,
			PubVersion: pubVersion, PubSizeChunks: pubSize,
		})
		if err != nil {
			t.Fatalf("weave v%d: %v", w.version, err)
		}
		if err := store.PutNodes(nodes); err != nil {
			t.Fatalf("put v%d: %v", w.version, err)
		}
		pubVersion, pubSize = w.version, w.sizeChunks
	}
}

// randomRefHistory generates a mixed append/overwrite/sparse history.
func randomRefHistory(rng *rand.Rand, nWrites int) []refWrite {
	history := make([]refWrite, nWrites)
	var curEnd uint64
	for i := range history {
		var start, end uint64
		switch rng.Intn(3) {
		case 0: // append
			start = curEnd
			end = start + 1 + uint64(rng.Intn(8))
		case 1: // overwrite
			if curEnd > 0 {
				start = uint64(rng.Intn(int(curEnd)))
			}
			end = start + 1 + uint64(rng.Intn(6))
		default: // sparse, possibly past the end
			start = uint64(rng.Intn(int(curEnd) + 5))
			end = start + 1 + uint64(rng.Intn(9))
		}
		if end > curEnd {
			curEnd = end
		}
		history[i] = refWrite{version: uint64(i + 1), start: start, end: end, sizeChunks: curEnd}
	}
	return history
}

// referenceCollect is the node-at-a-time descent the batched CollectLeaves
// replaced: one GetNode per tree node, recursive, no batching, no
// speculation. It is the semantic oracle the batched path must match.
func referenceCollect(store meta.Store, blob, version, sizeChunks, a, b uint64) ([]meta.ChunkRef, error) {
	out := make([]meta.ChunkRef, b-a)
	var walk func(ver, off, size uint64) error
	walk = func(ver, off, size uint64) error {
		if ver == meta.ZeroVersion {
			return nil // zero subtree; out is pre-zeroed
		}
		node, err := store.GetNode(meta.NodeKey{Blob: blob, Version: ver, Off: off, Size: size})
		if err != nil {
			return err
		}
		if node.Leaf {
			if size != 1 {
				return fmt.Errorf("leaf with span %d", size)
			}
			out[off-a] = node.Chunk
			return nil
		}
		half := size / 2
		if off < b && a < off+half {
			if err := walk(node.LeftVer, off, half); err != nil {
				return err
			}
		}
		if off+half < b && a < off+size {
			return walk(node.RightVer, off+half, half)
		}
		return nil
	}
	if err := walk(version, 0, meta.NextPow2(sizeChunks)); err != nil {
		return nil, err
	}
	return out, nil
}

func refsEqual(x, y []meta.ChunkRef) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i].Key != y[i].Key || x[i].Length != y[i].Length || x[i].IsZero() != y[i].IsZero() {
			return false
		}
	}
	return true
}

// TestDescentEquivalenceRandomized weaves randomized multi-version write
// histories through the wire and reads every version — full range and
// random sub-ranges — through both the batched level-order descent and
// the node-at-a-time reference walk, asserting identical leaves.
func TestDescentEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 12; trial++ {
		repl := 1 + rng.Intn(2)
		rig := startMetaRig(t, 3, repl, 0)
		blob := uint64(500 + trial)
		history := randomRefHistory(rng, 1+rng.Intn(10))
		weaveRefHistory(t, rig.client, blob, history)

		reader := newReaderClient(t, rig, repl, 4096)
		for _, w := range history {
			size := w.sizeChunks
			got, err := meta.CollectLeaves(reader, blob, w.version, size, 0, size)
			if err != nil {
				t.Fatalf("trial %d: batched collect v%d: %v", trial, w.version, err)
			}
			want, err := referenceCollect(rig.client, blob, w.version, size, 0, size)
			if err != nil {
				t.Fatalf("trial %d: reference collect v%d: %v", trial, w.version, err)
			}
			if !refsEqual(got, want) {
				t.Fatalf("trial %d: v%d full-range mismatch\n got %v\nwant %v", trial, w.version, got, want)
			}
			// Random sub-ranges.
			for k := 0; k < 3; k++ {
				a := uint64(rng.Intn(int(size)))
				b := a + 1 + uint64(rng.Intn(int(size-a)))
				got, err := meta.CollectLeaves(reader, blob, w.version, size, a, b)
				if err != nil {
					t.Fatalf("trial %d: batched collect v%d [%d,%d): %v", trial, w.version, a, b, err)
				}
				want, err := referenceCollect(rig.client, blob, w.version, size, a, b)
				if err != nil {
					t.Fatal(err)
				}
				if !refsEqual(got, want) {
					t.Fatalf("trial %d: v%d [%d,%d) mismatch", trial, w.version, a, b)
				}
			}
		}
	}
}

// TestDescentCacheAccounting checks the LRU bookkeeping around the
// batched descent: a cold read records misses and no hits, a warm re-read
// is served entirely from the cache — hits recorded, zero new RPCs.
func TestDescentCacheAccounting(t *testing.T) {
	rig := startMetaRig(t, 4, 1, 0)
	const blob, size = 61, 64
	weaveRefHistory(t, rig.client, blob, []refWrite{
		{version: 1, start: 0, end: size, sizeChunks: size},
		{version: 2, start: 10, end: 30, sizeChunks: size},
	})

	reader := newReaderClient(t, rig, 1, 8192)
	if _, err := meta.CollectLeaves(reader, blob, 2, size, 0, size); err != nil {
		t.Fatal(err)
	}
	cold := reader.RPCStats()
	if cold.CacheHits != 0 {
		t.Errorf("cold read recorded %d cache hits", cold.CacheHits)
	}
	if cold.CacheMisses == 0 {
		t.Error("cold read recorded no cache misses")
	}
	if cold.GetNodesRPCs == 0 {
		t.Error("cold read issued no batched RPCs")
	}

	if _, err := meta.CollectLeaves(reader, blob, 2, size, 0, size); err != nil {
		t.Fatal(err)
	}
	warm := reader.RPCStats()
	if warm.GetNodesRPCs != cold.GetNodesRPCs || warm.GetRPCs != cold.GetRPCs {
		t.Errorf("warm re-read issued RPCs: getnodes %d->%d, get %d->%d",
			cold.GetNodesRPCs, warm.GetNodesRPCs, cold.GetRPCs, warm.GetRPCs)
	}
	if warm.CacheHits == 0 {
		t.Error("warm re-read recorded no cache hits")
	}
}

// TestDescentProviderFailover downs one metadata provider and re-reads:
// with replication 2 the batched descent must fail the dead owner's share
// of each frontier over to the surviving replica and still produce leaves
// identical to the reference walk.
func TestDescentProviderFailover(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rig := startMetaRig(t, 4, 2, 0)
	const blob = 91
	history := randomRefHistory(rng, 8)
	weaveRefHistory(t, rig.client, blob, history)

	last := history[len(history)-1]
	want, err := referenceCollect(rig.client, blob, last.version, last.sizeChunks, 0, last.sizeChunks)
	if err != nil {
		t.Fatal(err)
	}

	rig.fabric.SetDown(rig.addrs[0], true)
	reader := newReaderClient(t, rig, 2, 0)
	got, err := meta.CollectLeaves(reader, blob, last.version, last.sizeChunks, 0, last.sizeChunks)
	if err != nil {
		t.Fatalf("batched collect with a provider down: %v", err)
	}
	if !refsEqual(got, want) {
		t.Fatal("leaves diverged after provider failover")
	}
}

// treeDepth is the number of levels of a segment tree over sizeChunks
// chunks (root..leaf inclusive).
func treeDepth(sizeChunks uint64) int {
	d := 1
	for s := meta.NextPow2(sizeChunks); s > 1; s /= 2 {
		d++
	}
	return d
}

// TestDescentRPCBound asserts the acceptance bound of the batching
// refactor: a cold-cache read of a 256-chunk range against M metadata
// providers issues at most M × tree-depth meta.getnodes RPCs, for both a
// single-writer history (where speculation collapses it to one round)
// and a fragmented multi-writer one.
func TestDescentRPCBound(t *testing.T) {
	const m, size = 4, 256
	histories := map[string][]refWrite{
		"single-writer": {{version: 1, start: 0, end: size, sizeChunks: size}},
		"fragmented": {
			{version: 1, start: 0, end: size, sizeChunks: size},
			{version: 2, start: 0, end: 64, sizeChunks: size},
			{version: 3, start: 200, end: 256, sizeChunks: size},
			{version: 4, start: 97, end: 99, sizeChunks: size},
			{version: 5, start: 31, end: 160, sizeChunks: size},
		},
	}
	for name, history := range histories {
		t.Run(name, func(t *testing.T) {
			rig := startMetaRig(t, m, 1, 0)
			const blob = 11
			weaveRefHistory(t, rig.client, blob, history)
			reader := newReaderClient(t, rig, 1, 1<<16)
			last := history[len(history)-1]
			refs, err := meta.CollectLeaves(reader, blob, last.version, size, 0, size)
			if err != nil {
				t.Fatal(err)
			}
			if len(refs) != size {
				t.Fatalf("got %d refs", len(refs))
			}
			stats := reader.RPCStats()
			bound := int64(m * treeDepth(size))
			if stats.GetNodesRPCs > bound {
				t.Errorf("cold 256-chunk read issued %d meta.getnodes RPCs, bound %d", stats.GetNodesRPCs, bound)
			}
			if stats.GetRPCs != 0 {
				t.Errorf("cold read fell back to %d singleton meta.get RPCs", stats.GetRPCs)
			}
			t.Logf("%s: %d getnodes RPCs (bound %d), %d nodes fetched",
				name, stats.GetNodesRPCs, bound, stats.NodesFetched)
		})
	}
}

// TestPutNodesRPCBound asserts the write-side acceptance bound: a weave
// of W nodes at replication R issues at most min(W, M) × R meta.put RPCs.
func TestPutNodesRPCBound(t *testing.T) {
	const m, repl, size = 4, 2, 256
	rig := startMetaRig(t, m, repl, 0)
	const blob = 13
	leaves := make([]meta.ChunkRef, size)
	for i := range leaves {
		leaves[i] = meta.ChunkRef{
			Providers: []string{"dp"},
			Key:       chunk.Key{Blob: blob, Version: 1, Index: uint64(i)},
			Length:    100,
		}
	}
	nodes, _, err := meta.Weave(rig.client, meta.WeaveInput{
		Blob: blob, Version: 1, StartChunk: 0, EndChunk: size,
		SizeChunks: size, Leaves: leaves,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rig.client.PutNodes(nodes); err != nil {
		t.Fatal(err)
	}
	stats := rig.client.RPCStats()
	w := int64(len(nodes))
	bound := w
	if int64(m) < bound {
		bound = int64(m)
	}
	bound *= repl
	if stats.PutRPCs > bound {
		t.Errorf("weave of %d nodes at replication %d issued %d meta.put RPCs, bound %d",
			w, repl, stats.PutRPCs, bound)
	}
	if stats.NodesStored < w*repl {
		t.Errorf("stored %d node replicas, want >= %d", stats.NodesStored, w*repl)
	}
	t.Logf("%d nodes, repl %d: %d put RPCs (bound %d)", w, repl, stats.PutRPCs, bound)
}
