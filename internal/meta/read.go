package meta

import (
	"context"
	"fmt"
)

// ContextStore is an optional Store refinement: stores whose operations
// can be attributed to a caller-provided context (trace propagation)
// implement it. The DHT client does; in-process test stores need not.
type ContextStore interface {
	PutNodesCtx(ctx context.Context, nodes []*Node) error
	GetNodeCtx(ctx context.Context, key NodeKey) (*Node, error)
	GetNodesCtx(ctx context.Context, keys []NodeKey) ([]*Node, error)
}

// ctxStore injects one operation's context into every Store call the
// descent and weave engines make, when the underlying store can use it.
// It forwards the optional refinements (Peeker, speculation observer and
// depth advisor) so wrapping is behavior-neutral; a store without
// ContextStore simply runs context-free, exactly as before.
type ctxStore struct {
	ctx context.Context
	s   Store
}

func (cs ctxStore) PutNodes(nodes []*Node) error {
	if c, ok := cs.s.(ContextStore); ok {
		return c.PutNodesCtx(cs.ctx, nodes)
	}
	return cs.s.PutNodes(nodes)
}

func (cs ctxStore) GetNode(key NodeKey) (*Node, error) {
	if c, ok := cs.s.(ContextStore); ok {
		return c.GetNodeCtx(cs.ctx, key)
	}
	return cs.s.GetNode(key)
}

func (cs ctxStore) GetNodes(keys []NodeKey) ([]*Node, error) {
	if c, ok := cs.s.(ContextStore); ok {
		return c.GetNodesCtx(cs.ctx, keys)
	}
	return cs.s.GetNodes(keys)
}

func (cs ctxStore) PeekNodes(keys []NodeKey) []*Node {
	if p, ok := cs.s.(Peeker); ok {
		return p.PeekNodes(keys)
	}
	return make([]*Node, len(keys)) // all-nil: nothing known locally
}

func (cs ctxStore) observeSpec(hits, misses int64) {
	if o, ok := cs.s.(specObserver); ok {
		o.observeSpec(hits, misses)
	}
}

func (cs ctxStore) specExpansionDepth() int {
	if a, ok := cs.s.(specDepthAdvisor); ok {
		return a.specExpansionDepth()
	}
	return specBudget // same default an unadvised store gets
}

// specBudget bounds the number of node keys fetched per descent round.
// Beyond the budget the enumeration truncates breadth-first, so a huge
// read degrades gracefully into plain level-order rounds instead of
// building unbounded requests.
const specBudget = 1 << 14

// specObserver is an optional Store refinement: stores that account for
// the descent's same-label speculation (the DHT client, which exports the
// counts through RPCStats) receive each fetch round's expansion hit/miss
// totals.
type specObserver interface {
	observeSpec(hits, misses int64)
}

// specDepthAdvisor is an optional Store refinement: the store recommends
// how many levels below the frontier the same-label expansion may probe
// this round. The DHT client implements it adaptively — when RPCStats'
// SpecHits/SpecMisses show the guess keeps missing (a fragmented version
// history), it shrinks the depth so rounds stop paying for keys that come
// back absent, and re-deepens once the guesses start landing again.
// Stores without the refinement get the full budget-bounded expansion.
type specDepthAdvisor interface {
	specExpansionDepth() int
}

// Peeker is an optional Store refinement: PeekNodes resolves keys from
// local, network-free state — the DHT client's LRU cache, or the whole
// map for an in-process store. The result is aligned with keys; nil
// entries are merely "not known locally", never an authoritative
// absence. The batched descent drains the peek before every round so a
// warm cache costs zero RPCs and the network fetch covers only the
// genuine miss boundary.
type Peeker interface {
	PeekNodes(keys []NodeKey) []*Node
}

// span is a subtree whose version label is known (from its parent, or
// from the version manager for the root) and which overlaps the
// collected chunk range.
type span struct {
	ver  uint64
	off  uint64
	size uint64
}

// CollectLeaves resolves the chunk references for chunk range [a, b) of
// the given published version by descending its segment tree. sizeChunks
// is the blob size (in chunks) at that version, as reported by the version
// manager. Never-written ranges come back as zero ChunkRefs.
//
// The descent is level-order and batched: each round's frontier of node
// keys goes to the store in one GetNodes call (the DHT client groups the
// keys by owner, one RPC per metadata provider per round), so a cold read
// of C chunks costs O(providers × tree depth) round trips instead of the
// O(C) a node-at-a-time walk pays. Before each round the frontier is
// pushed as deep as it will go through the store's local Peeker state, so
// cached subtrees never touch the network at all.
//
// Each network round additionally expands every frontier subtree under
// the guess that its descendants carry the same version label. The guess
// exploits the structure versioning gives the tree: a writer labels every
// node it weaves with its own version, so any subtree last touched by one
// write — the common case for freshly written data and for all untouched
// regions — is uniformly labeled, and one round resolves it completely. A
// wrong guess is harmless: a speculative key simply comes back absent, is
// never consulted (the parent's actual child label routes the walk), and
// the differently-labeled subtree forms the next round's frontier. Rounds
// are therefore bounded by the tree depth, reached only by pathologically
// fragmented histories.
func CollectLeaves(store Store, blob, version, sizeChunks, a, b uint64) ([]ChunkRef, error) {
	refs, _, err := collectLeaves(store, blob, version, sizeChunks, a, b, false)
	return refs, err
}

// CollectLeavesWithKeys is CollectLeaves additionally reporting each
// resolved leaf's node key (zero-valued for never-written chunks). The
// read path uses the keys to refresh a leaf whose cached replica list
// went stale — every address failing is the signature of a descriptor the
// repair engine has since patched.
func CollectLeavesWithKeys(store Store, blob, version, sizeChunks, a, b uint64) ([]ChunkRef, []NodeKey, error) {
	return collectLeaves(store, blob, version, sizeChunks, a, b, true)
}

// CollectLeavesCtx is CollectLeaves carrying the caller's context, so a
// traced read attributes every descent round's fetches to its trace.
func CollectLeavesCtx(ctx context.Context, store Store, blob, version, sizeChunks, a, b uint64) ([]ChunkRef, error) {
	refs, _, err := collectLeaves(ctxStore{ctx: ctx, s: store}, blob, version, sizeChunks, a, b, false)
	return refs, err
}

// CollectLeavesWithKeysCtx is CollectLeavesWithKeys carrying the
// caller's context.
func CollectLeavesWithKeysCtx(ctx context.Context, store Store, blob, version, sizeChunks, a, b uint64) ([]ChunkRef, []NodeKey, error) {
	return collectLeaves(ctxStore{ctx: ctx, s: store}, blob, version, sizeChunks, a, b, true)
}

func collectLeaves(store Store, blob, version, sizeChunks, a, b uint64, withKeys bool) ([]ChunkRef, []NodeKey, error) {
	if b < a {
		return nil, nil, fmt.Errorf("meta: invalid chunk range [%d,%d)", a, b)
	}
	if a == b {
		return nil, nil, nil
	}
	if b > sizeChunks {
		return nil, nil, fmt.Errorf("meta: chunk range [%d,%d) beyond blob size %d", a, b, sizeChunks)
	}
	out := make([]ChunkRef, b-a) // zero ChunkRefs: never-written ranges stay as made
	var outKeys []NodeKey
	if withKeys {
		outKeys = make([]NodeKey, b-a)
	}
	if version == ZeroVersion {
		return out, outKeys, nil
	}
	c := &collector{store: store, blob: blob, a: a, b: b, out: out, outKeys: outKeys}
	if p, ok := store.(Peeker); ok {
		c.peeker = p
	}
	frontier := []span{{ver: version, off: 0, size: NextPow2(sizeChunks)}}
	for len(frontier) > 0 {
		var err error
		if frontier, err = c.peekRound(frontier); err != nil {
			return nil, nil, err
		}
		if len(frontier) == 0 {
			break
		}
		if frontier, err = c.fetchRound(frontier); err != nil {
			return nil, nil, err
		}
	}
	return out, outKeys, nil
}

type collector struct {
	store   Store
	peeker  Peeker
	blob    uint64
	a, b    uint64
	out     []ChunkRef
	outKeys []NodeKey // nil unless the caller asked for leaf keys

	// Per-round fetch state: keys requested this round and their results.
	keys  []NodeKey
	index map[NodeKey]int
	nodes []*Node
	next  []span
}

func (c *collector) key(s span) NodeKey {
	return NodeKey{Blob: c.blob, Version: s.ver, Off: s.off, Size: s.size}
}

// peekRound walks the frontier as deep as the store's local state allows
// without touching the network, returning the miss boundary: the spans
// whose nodes must be fetched. Stores without a Peeker pass the frontier
// through untouched.
func (c *collector) peekRound(frontier []span) ([]span, error) {
	if c.peeker == nil {
		return frontier, nil
	}
	var misses []span
	for len(frontier) > 0 {
		keys := make([]NodeKey, len(frontier))
		for i, s := range frontier {
			keys[i] = c.key(s)
		}
		nodes := c.peeker.PeekNodes(keys)
		if len(nodes) != len(keys) {
			return nil, fmt.Errorf("meta: peek returned %d nodes for %d keys", len(nodes), len(keys))
		}
		var deeper []span
		for i, s := range frontier {
			if nodes[i] == nil {
				misses = append(misses, s)
				continue
			}
			children, err := c.resolve(s, nodes[i])
			if err != nil {
				return nil, err
			}
			deeper = append(deeper, children...)
		}
		frontier = deeper
	}
	return misses, nil
}

// fetchRound fetches one frontier (plus same-label speculative
// descendants) in a single batched store operation and walks the
// results, returning the next frontier: the roots of every subtree whose
// label differs from its parent's, plus any subtree the fetch budget cut
// off.
func (c *collector) fetchRound(frontier []span) ([]span, error) {
	c.keys = c.keys[:0]
	c.nodes = nil
	c.next = nil
	if c.index == nil {
		c.index = make(map[NodeKey]int)
	} else {
		clear(c.index)
	}

	// Enumerate breadth-first so a budget cut drops the deepest
	// speculative keys first, never a frontier root. Keys enumerated past
	// the frontier roots are the same-label speculation; their count
	// marks where the hit/miss accounting below starts. The expansion
	// depth is capped by the store's advice when it gives any: a
	// fragmented history keeps missing on deep same-label guesses, and the
	// adaptive depth turns those wasted keys off instead of probing the
	// full subtree every round.
	maxDepth := specBudget // effectively unbounded; budget is the real cap
	if adv, ok := c.store.(specDepthAdvisor); ok {
		maxDepth = adv.specExpansionDepth()
	}
	frontierKeys := 0
	type qent struct {
		s     span
		depth int
	}
	queue := make([]qent, 0, 2*len(frontier))
	for _, s := range frontier {
		queue = append(queue, qent{s: s})
	}
	for qi := 0; qi < len(queue) && len(c.keys) < specBudget; qi++ {
		s, depth := queue[qi].s, queue[qi].depth
		k := c.key(s)
		if _, dup := c.index[k]; dup {
			continue
		}
		c.index[k] = len(c.keys)
		c.keys = append(c.keys, k)
		if qi < len(frontier) {
			frontierKeys++
		}
		if s.size > 1 && depth < maxDepth {
			half := s.size / 2
			if overlaps(s.off, s.off+half, c.a, c.b) {
				queue = append(queue, qent{s: span{ver: s.ver, off: s.off, size: half}, depth: depth + 1})
			}
			if overlaps(s.off+half, s.off+s.size, c.a, c.b) {
				queue = append(queue, qent{s: span{ver: s.ver, off: s.off + half, size: half}, depth: depth + 1})
			}
		}
	}
	var err error
	c.nodes, err = c.store.GetNodes(c.keys)
	if err != nil {
		return nil, err
	}
	if len(c.nodes) != len(c.keys) {
		return nil, fmt.Errorf("meta: store returned %d nodes for %d keys", len(c.nodes), len(c.keys))
	}
	if so, ok := c.store.(specObserver); ok {
		var hits, misses int64
		for _, n := range c.nodes[frontierKeys:] {
			if n != nil {
				hits++
			} else {
				misses++
			}
		}
		so.observeSpec(hits, misses)
	}
	for _, s := range frontier {
		if err := c.walk(s); err != nil {
			return nil, err
		}
	}
	return c.next, nil
}

// walk resolves the subtree rooted at s against this round's fetched
// nodes. s's label is authoritative (named by its parent), so a missing
// root here is a real failure, retried once through the single-get path
// to distinguish "absent everywhere" from "replica unreachable".
func (c *collector) walk(s span) error {
	k := c.key(s)
	i, fetched := c.index[k]
	if !fetched {
		// Cut off by the round budget; its label is known, so it simply
		// heads the next round's frontier.
		c.next = append(c.next, s)
		return nil
	}
	node := c.nodes[i]
	if node == nil {
		n, err := c.store.GetNode(k)
		if err != nil {
			return fmt.Errorf("meta: descent at %s: %w", k, err)
		}
		node = n
	}
	children, err := c.resolve(s, node)
	if err != nil {
		return err
	}
	for _, ch := range children {
		if ch.ver == s.ver {
			// Same label: the speculative fetch covered it; keep walking
			// within this round.
			if err := c.walk(ch); err != nil {
				return err
			}
			continue
		}
		// Label boundary: this child's subtree belongs to the next round.
		c.next = append(c.next, ch)
	}
	return nil
}

// resolve consumes one fetched node: leaves land in the output, inner
// nodes yield their in-range, non-zero children.
func (c *collector) resolve(s span, node *Node) ([]span, error) {
	if node.Leaf {
		if s.size != 1 {
			return nil, fmt.Errorf("meta: leaf %s with span %d", c.key(s), s.size)
		}
		c.out[s.off-c.a] = node.Chunk
		if c.outKeys != nil {
			c.outKeys[s.off-c.a] = c.key(s)
		}
		return nil, nil
	}
	if s.size == 1 {
		return nil, fmt.Errorf("meta: inner node %s at leaf granularity", c.key(s))
	}
	half := s.size / 2
	candidates := [2]span{
		{ver: node.LeftVer, off: s.off, size: half},
		{ver: node.RightVer, off: s.off + half, size: half},
	}
	children := make([]span, 0, 2)
	for _, ch := range candidates {
		if ch.ver == ZeroVersion || !overlaps(ch.off, ch.off+ch.size, c.a, c.b) {
			continue // zero subtree (out is pre-zeroed) or outside the range
		}
		children = append(children, ch)
	}
	return children, nil
}
