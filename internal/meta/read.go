package meta

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// parallelThreshold is the subtree width (in chunks) above which the two
// children of an inner node are descended concurrently. Descents are
// network-bound (one GetNode per level per subtree), so parallelism across
// subtrees hides metadata-provider latency.
const parallelThreshold = 32

// CollectLeaves resolves the chunk references for chunk range [a, b) of
// the given published version by descending its segment tree. sizeChunks
// is the blob size (in chunks) at that version, as reported by the version
// manager. Never-written ranges come back as zero ChunkRefs.
func CollectLeaves(store Store, blob, version, sizeChunks, a, b uint64) ([]ChunkRef, error) {
	if b < a {
		return nil, fmt.Errorf("meta: invalid chunk range [%d,%d)", a, b)
	}
	if a == b {
		return nil, nil
	}
	if b > sizeChunks {
		return nil, fmt.Errorf("meta: chunk range [%d,%d) beyond blob size %d", a, b, sizeChunks)
	}
	out := make([]ChunkRef, b-a)
	c := &collector{store: store, blob: blob, a: a, b: b, out: out}
	root := NextPow2(sizeChunks)
	c.wg.Add(1)
	c.walk(version, 0, root)
	c.wg.Wait()
	if err := c.err.Load(); err != nil {
		return nil, *err
	}
	return out, nil
}

type collector struct {
	store Store
	blob  uint64
	a, b  uint64
	out   []ChunkRef
	wg    sync.WaitGroup
	err   atomic.Pointer[error]
}

func (c *collector) fail(err error) {
	c.err.CompareAndSwap(nil, &err)
}

// walk visits the node (version, off, size); the caller must have
// c.wg.Add(1)-ed for it. Ranges are pre-clipped: walk is only called for
// subtrees overlapping [a, b).
func (c *collector) walk(version, off, size uint64) {
	defer c.wg.Done()
	if c.err.Load() != nil {
		return
	}
	if version == ZeroVersion {
		lo, hi := off, off+size
		if lo < c.a {
			lo = c.a
		}
		if hi > c.b {
			hi = c.b
		}
		for i := lo; i < hi; i++ {
			c.out[i-c.a] = ChunkRef{} // zero chunk
		}
		return
	}
	node, err := c.store.GetNode(NodeKey{Blob: c.blob, Version: version, Off: off, Size: size})
	if err != nil {
		c.fail(err)
		return
	}
	if node.Leaf {
		if size != 1 {
			c.fail(fmt.Errorf("meta: leaf %s with span %d", node.Key, size))
			return
		}
		c.out[off-c.a] = node.Chunk
		return
	}
	if size == 1 {
		c.fail(fmt.Errorf("meta: inner node %s at leaf granularity", node.Key))
		return
	}
	half := size / 2
	goLeft := overlaps(off, off+half, c.a, c.b)
	goRight := overlaps(off+half, off+size, c.a, c.b)
	if goLeft && goRight && size > parallelThreshold {
		c.wg.Add(2)
		go c.walk(node.LeftVer, off, half)
		c.walk(node.RightVer, off+half, half)
		return
	}
	if goLeft {
		c.wg.Add(1)
		c.walk(node.LeftVer, off, half)
	}
	if goRight {
		c.wg.Add(1)
		c.walk(node.RightVer, off+half, half)
	}
}
