package chunk

import (
	"bytes"
	"testing"
)

// rangeEngines builds one of each store engine over a fresh temp dir.
func rangeEngines(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := NewDiskStore(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	disk2, err := NewDiskStore(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{
		"mem":          NewMemStore(),
		"disk":         disk,
		"cached(warm)": NewCachedStore(disk2, 1<<20),
	}
}

func TestGetRangeSemantics(t *testing.T) {
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i)
	}
	k := Key{Blob: 1, Version: 2, Index: 3}
	cases := []struct {
		name        string
		off, length uint64
		want        []byte
	}{
		{"whole", 0, 0, data},
		{"prefix", 0, 10, data[:10]},
		{"interior", 100, 50, data[100:150]},
		{"to-end", 990, 0, data[990:]},
		{"clipped-tail", 990, 100, data[990:]},
		{"past-end", 1000, 10, nil},
		{"far-past-end", 5000, 1, nil},
		// off+length overflows uint64: must clamp to the end, not wrap
		// below off (a malformed wire request would otherwise panic the
		// provider).
		{"overflow", 1, ^uint64(0), data[1:]},
		{"overflow-max-off", ^uint64(0), ^uint64(0), nil},
	}
	for name, s := range rangeEngines(t) {
		if err := s.Put(k, data); err != nil {
			t.Fatalf("%s: put: %v", name, err)
		}
		for _, c := range cases {
			got, err := s.GetRange(k, c.off, c.length)
			if err != nil {
				t.Errorf("%s/%s: %v", name, c.name, err)
				continue
			}
			if !bytes.Equal(got, c.want) {
				t.Errorf("%s/%s: got %d bytes, want %d", name, c.name, len(got), len(c.want))
			}
		}
		if _, err := s.GetRange(Key{Blob: 9}, 0, 1); err == nil {
			t.Errorf("%s: ranged read of absent chunk succeeded", name)
		}
	}
	// A cold cache must serve ranged reads from the backing store without
	// admitting partial chunks.
	disk, err := NewDiskStore(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := disk.Put(k, data); err != nil {
		t.Fatal(err)
	}
	cold := NewCachedStore(disk, 1<<20)
	got, err := cold.GetRange(k, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[100:150]) {
		t.Fatal("cold cached ranged read mismatch")
	}
	if hits, _, resident := cold.CacheStats(); hits != 0 || resident != 0 {
		t.Fatalf("ranged miss polluted the cache: hits=%d resident=%d", hits, resident)
	}
}
