package chunk

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// DiskStore persists each chunk as a file under a directory; the index of
// present keys and sizes is kept in memory and rebuilt from the directory
// on open, so a provider restarted after a crash recovers its inventory.
// This is the "persistent data storage" added in §IV-B.
type DiskStore struct {
	dir string

	mu    sync.RWMutex
	sizes map[Key]int64
	bytes int64
	sync  bool
}

// NewDiskStore opens (creating if needed) a chunk directory. If syncWrites
// is true every Put is fsynced before returning.
func NewDiskStore(dir string, syncWrites bool) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("chunk: creating store dir: %w", err)
	}
	s := &DiskStore{dir: dir, sizes: make(map[Key]int64), sync: syncWrites}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("chunk: scanning store dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		k, ok := parseChunkName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		s.sizes[k] = info.Size()
		s.bytes += info.Size()
	}
	return s, nil
}

func chunkName(k Key) string {
	return fmt.Sprintf("%d-%d-%d.chunk", k.Blob, k.Version, k.Index)
}

func parseChunkName(name string) (Key, bool) {
	if !strings.HasSuffix(name, ".chunk") {
		return Key{}, false
	}
	var k Key
	_, err := fmt.Sscanf(strings.TrimSuffix(name, ".chunk"), "%d-%d-%d", &k.Blob, &k.Version, &k.Index)
	return k, err == nil
}

func (s *DiskStore) path(k Key) string { return filepath.Join(s.dir, chunkName(k)) }

// Put writes the chunk to a temp file and renames it into place, so a
// crash mid-write never leaves a half chunk under a valid name.
func (s *DiskStore) Put(k Key, data []byte) error {
	s.mu.Lock()
	if _, dup := s.sizes[k]; dup {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrDuplicate, k)
	}
	// Reserve the key so concurrent Puts of the same key conflict cleanly.
	s.sizes[k] = -1
	s.mu.Unlock()

	undo := func() {
		s.mu.Lock()
		delete(s.sizes, k)
		s.mu.Unlock()
	}

	tmp, err := os.CreateTemp(s.dir, "put-*")
	if err != nil {
		undo()
		return fmt.Errorf("chunk: temp file: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		undo()
		return fmt.Errorf("chunk: writing %s: %w", k, err)
	}
	if s.sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			undo()
			return fmt.Errorf("chunk: syncing %s: %w", k, err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		undo()
		return fmt.Errorf("chunk: closing %s: %w", k, err)
	}
	if err := os.Rename(tmp.Name(), s.path(k)); err != nil {
		os.Remove(tmp.Name())
		undo()
		return fmt.Errorf("chunk: publishing %s: %w", k, err)
	}
	s.mu.Lock()
	s.sizes[k] = int64(len(data))
	s.bytes += int64(len(data))
	s.mu.Unlock()
	return nil
}

// Get reads the chunk bytes from disk.
func (s *DiskStore) Get(k Key) ([]byte, error) {
	s.mu.RLock()
	size, ok := s.sizes[k]
	s.mu.RUnlock()
	if !ok || size < 0 {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, k)
	}
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		return nil, fmt.Errorf("chunk: reading %s: %w", k, err)
	}
	return data, nil
}

// GetRange reads only the requested bytes from the chunk file — a
// boundary read of a few bytes does not drag the whole chunk off disk.
func (s *DiskStore) GetRange(k Key, off, length uint64) ([]byte, error) {
	s.mu.RLock()
	size, ok := s.sizes[k]
	s.mu.RUnlock()
	if !ok || size < 0 {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, k)
	}
	off, end := clipBounds(uint64(size), off, length)
	if off >= end {
		return nil, nil
	}
	f, err := os.Open(s.path(k))
	if err != nil {
		return nil, fmt.Errorf("chunk: opening %s: %w", k, err)
	}
	defer f.Close()
	buf := make([]byte, end-off)
	if _, err := io.ReadFull(io.NewSectionReader(f, int64(off), int64(end-off)), buf); err != nil {
		return nil, fmt.Errorf("chunk: reading %s [%d,%d): %w", k, off, end, err)
	}
	return buf, nil
}

// Size reports a stored chunk's byte size from the in-memory manifest,
// without touching the file. Providers cross-check it against the
// sidecar's recorded length on boot to catch torn or truncated files.
func (s *DiskStore) Size(k Key) (int64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	size, ok := s.sizes[k]
	if !ok || size < 0 {
		return 0, false
	}
	return size, true
}

// Has reports whether k is stored.
func (s *DiskStore) Has(k Key) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	size, ok := s.sizes[k]
	return ok && size >= 0
}

// Delete removes k's file if present.
func (s *DiskStore) Delete(k Key) error {
	s.mu.Lock()
	size, ok := s.sizes[k]
	if ok {
		delete(s.sizes, k)
		if size > 0 {
			s.bytes -= size
		}
	}
	s.mu.Unlock()
	if !ok {
		return nil
	}
	if err := os.Remove(s.path(k)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("chunk: deleting %s: %w", k, err)
	}
	return nil
}

// Len reports the number of chunks.
func (s *DiskStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sizes)
}

// Bytes reports total stored payload bytes.
func (s *DiskStore) Bytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Keys returns all fully written keys in sorted order.
func (s *DiskStore) Keys() []Key {
	s.mu.RLock()
	out := make([]Key, 0, len(s.sizes))
	for k, size := range s.sizes {
		if size >= 0 {
			out = append(out, k)
		}
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Close is a no-op; files are already durable.
func (s *DiskStore) Close() error { return nil }
