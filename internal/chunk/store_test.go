package chunk

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

// storeFactories enumerates every Store implementation under test.
func storeFactories(t *testing.T) map[string]func() Store {
	t.Helper()
	return map[string]func() Store{
		"mem": func() Store { return NewMemStore() },
		"disk": func() Store {
			s, err := NewDiskStore(t.TempDir(), false)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"disk-sync": func() Store {
			s, err := NewDiskStore(t.TempDir(), true)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"cached-mem": func() Store { return NewCachedStore(NewMemStore(), 1<<20) },
		"cached-disk": func() Store {
			d, err := NewDiskStore(t.TempDir(), false)
			if err != nil {
				t.Fatal(err)
			}
			return NewCachedStore(d, 1<<20)
		},
		"cached-zero-capacity": func() Store { return NewCachedStore(NewMemStore(), 0) },
	}
}

func TestStoreContract(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			k1 := Key{Blob: 1, Version: 2, Index: 3}
			k2 := Key{Blob: 1, Version: 2, Index: 4}

			if _, err := s.Get(k1); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get absent: %v, want ErrNotFound", err)
			}
			if s.Has(k1) {
				t.Fatal("Has(absent) = true")
			}
			if err := s.Put(k1, []byte("hello")); err != nil {
				t.Fatalf("Put: %v", err)
			}
			if err := s.Put(k2, []byte("world!")); err != nil {
				t.Fatalf("Put: %v", err)
			}
			if err := s.Put(k1, []byte("again")); !errors.Is(err, ErrDuplicate) {
				t.Fatalf("duplicate Put: %v, want ErrDuplicate", err)
			}
			got, err := s.Get(k1)
			if err != nil || !bytes.Equal(got, []byte("hello")) {
				t.Fatalf("Get = %q, %v", got, err)
			}
			if !s.Has(k2) {
				t.Fatal("Has(k2) = false")
			}
			if s.Len() != 2 {
				t.Fatalf("Len = %d", s.Len())
			}
			if s.Bytes() != int64(len("hello")+len("world!")) {
				t.Fatalf("Bytes = %d", s.Bytes())
			}
			keys := s.Keys()
			if len(keys) != 2 || !keys[0].Less(keys[1]) {
				t.Fatalf("Keys = %v", keys)
			}
			if err := s.Delete(k1); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if s.Has(k1) || s.Len() != 1 {
				t.Fatal("Delete did not remove k1")
			}
			if err := s.Delete(k1); err != nil {
				t.Fatalf("Delete(absent): %v", err)
			}
		})
	}
}

func TestPutCopiesCallerBuffer(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			buf := []byte("immutable")
			k := Key{Blob: 9}
			if err := s.Put(k, buf); err != nil {
				t.Fatal(err)
			}
			buf[0] = 'X'
			got, err := s.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "immutable" {
				t.Errorf("store aliased caller buffer: %q", got)
			}
		})
	}
}

func TestConcurrentPutGet(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			const n = 200
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					k := Key{Blob: 1, Index: uint64(i)}
					data := []byte(fmt.Sprintf("payload-%d", i))
					if err := s.Put(k, data); err != nil {
						t.Errorf("Put %d: %v", i, err)
						return
					}
					got, err := s.Get(k)
					if err != nil || !bytes.Equal(got, data) {
						t.Errorf("Get %d = %q, %v", i, got, err)
					}
				}(i)
			}
			wg.Wait()
			if s.Len() != n {
				t.Errorf("Len = %d, want %d", s.Len(), n)
			}
		})
	}
}

func TestDiskStoreRecoversIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	want := map[Key][]byte{
		{Blob: 1, Version: 1, Index: 0}: []byte("aaa"),
		{Blob: 1, Version: 2, Index: 5}: []byte("bbbb"),
		{Blob: 2, Version: 1, Index: 9}: []byte("c"),
	}
	for k, v := range want {
		if err := s.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	re, err := NewDiskStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(want) {
		t.Fatalf("recovered Len = %d, want %d", re.Len(), len(want))
	}
	for k, v := range want {
		got, err := re.Get(k)
		if err != nil || !bytes.Equal(got, v) {
			t.Errorf("recovered Get(%s) = %q, %v", k, got, err)
		}
	}
	if re.Bytes() != 8 {
		t.Errorf("recovered Bytes = %d, want 8", re.Bytes())
	}
}

func TestCacheEviction(t *testing.T) {
	backing := NewMemStore()
	s := NewCachedStore(backing, 100)
	data := make([]byte, 40)
	for i := 0; i < 5; i++ {
		if err := s.Put(Key{Index: uint64(i)}, data); err != nil {
			t.Fatal(err)
		}
	}
	_, _, resident := s.CacheStats()
	if resident > 100 {
		t.Errorf("resident = %d, exceeds capacity", resident)
	}
	// Every chunk is still readable (from backing even if evicted).
	for i := 0; i < 5; i++ {
		if _, err := s.Get(Key{Index: uint64(i)}); err != nil {
			t.Errorf("Get(%d): %v", i, err)
		}
	}
}

func TestCacheHitAccounting(t *testing.T) {
	s := NewCachedStore(NewMemStore(), 1<<20)
	k := Key{Blob: 3}
	if err := s.Put(k, []byte("x")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, _ := s.CacheStats()
	if hits != 3 || misses != 0 {
		t.Errorf("hits=%d misses=%d, want 3,0", hits, misses)
	}
	if _, err := s.Get(Key{Blob: 99}); err == nil {
		t.Error("Get absent succeeded")
	}
	_, misses2, _ := s.CacheStats()
	if misses2 != 1 {
		t.Errorf("misses = %d, want 1", misses2)
	}
}

func TestCacheRangeAdmission(t *testing.T) {
	backing := NewMemStore()
	s := NewCachedStore(backing, 1<<20)
	k := Key{Blob: 7, Index: 2}
	payload := bytes.Repeat([]byte("abcd"), 64)
	if err := backing.Put(k, payload); err != nil { // bypass cache: cold chunk
		t.Fatal(err)
	}

	// The first rangeAdmitAfter-1 misses stay ranged: nothing admitted.
	for i := 0; i < rangeAdmitAfter-1; i++ {
		got, err := s.GetRange(k, 4, 8)
		if err != nil || !bytes.Equal(got, payload[4:12]) {
			t.Fatalf("GetRange #%d = %q, %v", i, got, err)
		}
	}
	if n := s.RangeAdmits(); n != 0 {
		t.Fatalf("RangeAdmits after %d misses = %d, want 0", rangeAdmitAfter-1, n)
	}
	hits, _, _ := s.CacheStats()
	if hits != 0 {
		t.Fatalf("hits before admission = %d, want 0", hits)
	}

	// The threshold miss promotes the whole chunk into the cache.
	if got, err := s.GetRange(k, 4, 8); err != nil || !bytes.Equal(got, payload[4:12]) {
		t.Fatalf("admitting GetRange = %q, %v", got, err)
	}
	if n := s.RangeAdmits(); n != 1 {
		t.Fatalf("RangeAdmits = %d, want 1", n)
	}
	if got, err := s.GetRange(k, 100, 28); err != nil || !bytes.Equal(got, payload[100:128]) {
		t.Fatalf("post-admission GetRange = %q, %v", got, err)
	}
	if hits, _, _ := s.CacheStats(); hits != 1 {
		t.Errorf("hits after admission = %d, want 1 (served from RAM)", hits)
	}

	// Delete clears the residency and the miss counter.
	if err := s.Delete(k); err != nil {
		t.Fatal(err)
	}
	if err := backing.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetRange(k, 0, 4); err != nil {
		t.Fatal(err)
	}
	if n := s.RangeAdmits(); n != 1 {
		t.Errorf("RangeAdmits after delete+miss = %d, want 1 (counter was reset)", n)
	}

	// Zero-capacity caches never admit.
	off := NewCachedStore(backing, 0)
	for i := 0; i < rangeAdmitAfter+2; i++ {
		if _, err := off.GetRange(k, 0, 4); err != nil {
			t.Fatal(err)
		}
	}
	if n := off.RangeAdmits(); n != 0 {
		t.Errorf("zero-capacity RangeAdmits = %d, want 0", n)
	}
}

func TestCacheServesAfterBackingDelete(t *testing.T) {
	// Documents the read-your-cache semantics: immutability makes stale
	// reads impossible, deletes purge the cache explicitly.
	s := NewCachedStore(NewMemStore(), 1<<20)
	k := Key{Blob: 1}
	if err := s.Put(k, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(k); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(k); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after Delete = %v, want ErrNotFound", err)
	}
}

func TestParseChunkName(t *testing.T) {
	cases := []struct {
		name string
		want Key
		ok   bool
	}{
		{"1-2-3.chunk", Key{1, 2, 3}, true},
		{"10-0-999.chunk", Key{10, 0, 999}, true},
		{"put-12345", Key{}, false},
		{"1-2.chunk", Key{}, false},
		{"x-y-z.chunk", Key{}, false},
	}
	for _, c := range cases {
		got, ok := parseChunkName(c.name)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("parseChunkName(%q) = %v,%v want %v,%v", c.name, got, ok, c.want, c.ok)
		}
	}
}

// property: Put/Get roundtrip over random keys and payloads; Keys() sorted.
func TestQuickMemStore(t *testing.T) {
	f := func(blobs []uint64, payload []byte) bool {
		s := NewMemStore()
		seen := map[Key]bool{}
		for i, b := range blobs {
			k := Key{Blob: b % 4, Version: uint64(i % 3), Index: uint64(i)}
			if seen[k] {
				continue
			}
			seen[k] = true
			if err := s.Put(k, payload); err != nil {
				return false
			}
		}
		keys := s.Keys()
		if len(keys) != len(seen) {
			return false
		}
		return sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMemStorePut64K(b *testing.B) {
	s := NewMemStore()
	data := make([]byte, 64<<10)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(Key{Index: uint64(i)}, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCachedGetHit(b *testing.B) {
	s := NewCachedStore(NewMemStore(), 1<<26)
	data := make([]byte, 64<<10)
	k := Key{Blob: 1}
	if err := s.Put(k, data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(k); err != nil {
			b.Fatal(err)
		}
	}
}
