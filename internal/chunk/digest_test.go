package chunk

import (
	"bytes"
	"testing"
)

func TestDigestVerify(t *testing.T) {
	data := []byte("the quick brown fox")
	d := DigestOf(data)
	if d.Algo != DigestCRC32C || d.IsZero() {
		t.Fatalf("DigestOf algo = %d", d.Algo)
	}
	if !d.Verify(data) {
		t.Error("clean data failed verification")
	}
	bad := append([]byte(nil), data...)
	bad[3] ^= 0xFF
	if d.Verify(bad) {
		t.Error("corrupt data passed verification")
	}
	if !(Digest{}).Verify(bad) {
		t.Error("zero digest must verify anything (legacy chunk)")
	}
	if !(Digest{Algo: 99, Sum: 1}).Verify(bad) {
		t.Error("unknown algorithm must not reject data it cannot check")
	}
}

// TestCorruptHooks drives the fault-injection hook on every engine: after
// Corrupt, a read must return different bytes that fail the digest.
func TestCorruptHooks(t *testing.T) {
	k := Key{Blob: 1, Version: 2, Index: 3}
	data := bytes.Repeat([]byte("abcdefgh"), 512)
	d := DigestOf(data)

	disk := func() Store {
		s, err := NewDiskStore(t.TempDir(), false)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	engines := map[string]Store{
		"mem":    NewMemStore(),
		"disk":   disk(),
		"cached": NewCachedStore(disk(), 1<<20),
		"tamper": NewTamperStore(NewMemStore()),
	}
	for name, s := range engines {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			if err := s.Put(k, data); err != nil {
				t.Fatal(err)
			}
			// Warm any cache so Corrupt must also defeat it.
			if _, err := s.Get(k); err != nil {
				t.Fatal(err)
			}
			if err := s.(Corruptor).Corrupt(k, 100); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(got, data) {
				t.Fatal("read returned clean bytes after Corrupt")
			}
			if d.Verify(got) {
				t.Fatal("digest verified corrupt bytes")
			}
			r, err := s.GetRange(k, 96, 16)
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(r, data[96:112]) {
				t.Fatal("ranged read returned clean bytes after Corrupt")
			}
			// Out-of-range and missing-key corruption must error.
			if err := s.(Corruptor).Corrupt(Key{Blob: 9}, 0); err == nil {
				t.Error("corrupting a missing key did not error")
			}
		})
	}

	// Offset past the end errors on engines that track sizes.
	m := NewMemStore()
	m.Put(k, data)
	if err := m.Corrupt(k, uint64(len(data))); err == nil {
		t.Error("corrupting past the end did not error")
	}
}
