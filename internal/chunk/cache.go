package chunk

import (
	"container/list"
	"sync"
)

// CachedStore layers a RAM LRU cache over a backing Store. This reproduces
// §IV-B: "persistent data and metadata storage while keeping our initial
// RAM-based storage scheme as an underlying caching mechanism". Writes go
// through to the backing store and populate the cache; reads are served
// from RAM when possible.
type CachedStore struct {
	backing Store

	mu       sync.Mutex
	capacity int64
	used     int64
	order    *list.List // front = most recently used; values are *cacheEntry
	entries  map[Key]*list.Element

	hits   int64
	misses int64

	// Frequency-based admission for ranged reads: GetRange misses do not
	// populate the cache (see GetRange), but a chunk that keeps getting
	// range-missed is evidently hot, so after rangeAdmitAfter misses the
	// next one promotes it to a full-chunk cache fill.
	rangeMisses map[Key]uint8
	rangeAdmits int64
}

// rangeAdmitAfter is how many ranged misses a chunk takes before the next
// one admits the whole chunk into the cache.
const rangeAdmitAfter = 3

// rangeMissTrackMax bounds the miss-counter map; when full it is reset
// wholesale (approximate counting is fine — this is an admission
// heuristic, not an accounting structure).
const rangeMissTrackMax = 4096

type cacheEntry struct {
	key  Key
	data []byte
}

// NewCachedStore wraps backing with an LRU cache of capacityBytes. A
// non-positive capacity disables caching (all calls pass through).
func NewCachedStore(backing Store, capacityBytes int64) *CachedStore {
	return &CachedStore{
		backing:     backing,
		capacity:    capacityBytes,
		order:       list.New(),
		entries:     make(map[Key]*list.Element),
		rangeMisses: make(map[Key]uint8),
	}
}

func (s *CachedStore) cachePut(k Key, data []byte) {
	if s.capacity <= 0 || int64(len(data)) > s.capacity {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[k]; ok {
		s.order.MoveToFront(el)
		return
	}
	el := s.order.PushFront(&cacheEntry{key: k, data: data})
	s.entries[k] = el
	s.used += int64(len(data))
	for s.used > s.capacity {
		back := s.order.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		s.order.Remove(back)
		delete(s.entries, ent.key)
		s.used -= int64(len(ent.data))
	}
}

func (s *CachedStore) cacheGet(k Key) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[k]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.order.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

func (s *CachedStore) cacheDelete(k Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[k]; ok {
		ent := el.Value.(*cacheEntry)
		s.order.Remove(el)
		delete(s.entries, k)
		s.used -= int64(len(ent.data))
	}
	delete(s.rangeMisses, k)
}

// noteRangeMiss bumps the chunk's ranged-miss counter and reports whether
// this miss crosses the admission threshold.
func (s *CachedStore) noteRangeMiss(k Key) bool {
	if s.capacity <= 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.rangeMisses) >= rangeMissTrackMax {
		if _, ok := s.rangeMisses[k]; !ok {
			s.rangeMisses = make(map[Key]uint8)
		}
	}
	n := s.rangeMisses[k] + 1
	if n < rangeAdmitAfter {
		s.rangeMisses[k] = n
		return false
	}
	delete(s.rangeMisses, k)
	return true
}

// Put writes through to the backing store and, on success, caches a copy.
func (s *CachedStore) Put(k Key, data []byte) error {
	if err := s.backing.Put(k, data); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.cachePut(k, cp)
	return nil
}

// Get serves from cache when possible, falling back to the backing store
// and populating the cache on a miss.
func (s *CachedStore) Get(k Key) ([]byte, error) {
	if data, ok := s.cacheGet(k); ok {
		return data, nil
	}
	data, err := s.backing.Get(k)
	if err != nil {
		return nil, err
	}
	s.cachePut(k, data)
	return data, nil
}

// GetRange serves the sub-range from a cached copy when present and
// otherwise reads only the requested bytes from the backing store. A
// ranged miss usually does not populate the cache: caching a partial
// chunk under the full chunk's key would poison later reads, and
// materializing the whole chunk on every ranged read would defeat the
// point of a ranged read. But a chunk that keeps getting range-missed is
// hot despite never being read whole, so after rangeAdmitAfter misses
// the next one pays for a full backing Get and admits the chunk.
func (s *CachedStore) GetRange(k Key, off, length uint64) ([]byte, error) {
	if data, ok := s.cacheGet(k); ok {
		return clipRange(data, off, length), nil
	}
	if s.noteRangeMiss(k) {
		if data, err := s.backing.Get(k); err == nil {
			s.cachePut(k, data)
			s.mu.Lock()
			s.rangeAdmits++
			s.mu.Unlock()
			return clipRange(data, off, length), nil
		}
		// Full read failed (e.g. concurrent delete); fall through to the
		// ranged path so the caller sees the backing store's own error.
	}
	return s.backing.GetRange(k, off, length)
}

// Has consults the backing store (authoritative).
func (s *CachedStore) Has(k Key) bool { return s.backing.Has(k) }

// Size delegates to the backing store when it tracks sizes.
func (s *CachedStore) Size(k Key) (int64, bool) {
	if sz, ok := s.backing.(interface{ Size(Key) (int64, bool) }); ok {
		return sz.Size(k)
	}
	return 0, false
}

// Delete removes from both layers.
func (s *CachedStore) Delete(k Key) error {
	s.cacheDelete(k)
	return s.backing.Delete(k)
}

// Len reports the backing store's chunk count.
func (s *CachedStore) Len() int { return s.backing.Len() }

// Bytes reports the backing store's payload bytes.
func (s *CachedStore) Bytes() int64 { return s.backing.Bytes() }

// Keys reports the backing store's keys.
func (s *CachedStore) Keys() []Key { return s.backing.Keys() }

// Close closes the backing store.
func (s *CachedStore) Close() error { return s.backing.Close() }

// CacheStats reports hits, misses and resident bytes.
func (s *CachedStore) CacheStats() (hits, misses, residentBytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.used
}

// RangeAdmits reports how many chunks frequency-based admission promoted
// to full-chunk residency off ranged reads.
func (s *CachedStore) RangeAdmits() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rangeAdmits
}
