// Fault injection for integrity testing: every store engine can flip a
// byte of a stored chunk in place, simulating bit-rot on a live replica
// the way KillProvider simulates a crash. Production code never calls
// these — they exist so corruption scenarios are scriptable from the
// cluster harness (cluster.CorruptChunk) and from unit tests.
package chunk

import (
	"fmt"
	"os"
	"sync"
)

// Corruptor is implemented by store engines that support injecting
// bit-rot for tests: Corrupt flips one byte of the stored chunk at off,
// bypassing immutability.
type Corruptor interface {
	Corrupt(k Key, off uint64) error
}

// Corrupt flips the byte at off in the stored copy.
func (s *MemStore) Corrupt(k Key, off uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.data[k]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, k)
	}
	if off >= uint64(len(d)) {
		return fmt.Errorf("chunk: corrupt offset %d beyond %s (%d bytes)", off, k, len(d))
	}
	// Get hands out the internal slice, so mutate a copy: a reader that
	// already holds the old slice keeps its (clean) bytes, exactly like a
	// page cache holding pre-rot data.
	cp := make([]byte, len(d))
	copy(cp, d)
	cp[off] ^= 0xFF
	s.data[k] = cp
	return nil
}

// Corrupt flips the byte at off in the chunk's file on disk.
func (s *DiskStore) Corrupt(k Key, off uint64) error {
	s.mu.RLock()
	size, ok := s.sizes[k]
	s.mu.RUnlock()
	if !ok || size < 0 {
		return fmt.Errorf("%w: %s", ErrNotFound, k)
	}
	if off >= uint64(size) {
		return fmt.Errorf("chunk: corrupt offset %d beyond %s (%d bytes)", off, k, size)
	}
	f, err := os.OpenFile(s.path(k), os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("chunk: opening %s for corruption: %w", k, err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], int64(off)); err != nil {
		return fmt.Errorf("chunk: reading %s for corruption: %w", k, err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], int64(off)); err != nil {
		return fmt.Errorf("chunk: corrupting %s: %w", k, err)
	}
	return nil
}

// Corrupt damages the backing copy and drops any cached copy, so the
// next read observes the rot instead of being masked by RAM.
func (s *CachedStore) Corrupt(k Key, off uint64) error {
	c, ok := s.backing.(Corruptor)
	if !ok {
		return fmt.Errorf("chunk: backing store %T cannot inject corruption", s.backing)
	}
	if err := c.Corrupt(k, off); err != nil {
		return err
	}
	s.cacheDelete(k)
	return nil
}

// TamperStore wraps any Store and lets tests corrupt chunks even when the
// backing engine does not implement Corruptor: tampered keys have one
// byte flipped on the way out of Get/GetRange, the stored bytes stay
// pristine. It doubles as a read-path-corruption simulator (bad NIC, bad
// RAM between disk and wire).
type TamperStore struct {
	Store

	mu       sync.Mutex
	tampered map[Key]uint64 // key -> flipped byte offset
}

// NewTamperStore wraps backing.
func NewTamperStore(backing Store) *TamperStore {
	return &TamperStore{Store: backing, tampered: make(map[Key]uint64)}
}

// Tamper marks k so reads return its bytes with the byte at off flipped.
func (s *TamperStore) Tamper(k Key, off uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tampered[k] = off
}

// Corrupt implements Corruptor by tampering (the stored copy is not
// touched, but every subsequent read misverifies identically).
func (s *TamperStore) Corrupt(k Key, off uint64) error {
	if !s.Has(k) {
		return fmt.Errorf("%w: %s", ErrNotFound, k)
	}
	s.Tamper(k, off)
	return nil
}

func (s *TamperStore) flip(k Key, data []byte, base uint64) []byte {
	s.mu.Lock()
	off, ok := s.tampered[k]
	s.mu.Unlock()
	if !ok || off < base || off-base >= uint64(len(data)) {
		return data
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	cp[off-base] ^= 0xFF
	return cp
}

// Get returns the stored bytes, tampered if marked.
func (s *TamperStore) Get(k Key) ([]byte, error) {
	data, err := s.Store.Get(k)
	if err != nil {
		return nil, err
	}
	return s.flip(k, data, 0), nil
}

// GetRange returns the stored range, tampered if the flipped byte falls
// inside it.
func (s *TamperStore) GetRange(k Key, off, length uint64) ([]byte, error) {
	data, err := s.Store.GetRange(k, off, length)
	if err != nil {
		return nil, err
	}
	return s.flip(k, data, off), nil
}

// Delete clears any tamper mark along with the chunk.
func (s *TamperStore) Delete(k Key) error {
	s.mu.Lock()
	delete(s.tampered, k)
	s.mu.Unlock()
	return s.Store.Delete(k)
}
