// Chunk content digests. Chunks are immutable (a (blob, version, index)
// triple is written at most once), so a digest computed by the writer at
// Put time stays valid for the chunk's whole life and can be re-checked
// on every read and by the background scrubber. The algorithm identifier
// travels with the sum everywhere (wire, sidecar WAL) so the scheme can
// evolve without a flag day.
package chunk

import "hash/crc32"

// Digest algorithms. Zero means "no digest recorded" (legacy chunks
// written before digests existed); readers treat those as unverifiable
// rather than corrupt, and providers backfill them on first clean read.
const (
	DigestNone   uint8 = 0
	DigestCRC32C uint8 = 1 // CRC-32C (Castagnoli); SSE4.2-accelerated by hash/crc32
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Digest is a chunk content checksum plus the algorithm that produced it.
type Digest struct {
	Algo uint8
	Sum  uint32
}

// DigestOf computes the current-generation digest of data.
func DigestOf(data []byte) Digest {
	return Digest{Algo: DigestCRC32C, Sum: crc32.Checksum(data, castagnoli)}
}

// IsZero reports whether no digest was recorded.
func (d Digest) IsZero() bool { return d.Algo == DigestNone }

// Verify checks data against the digest. A zero digest verifies anything
// (legacy chunk, nothing to check against), and so does an algorithm this
// build does not know — rejecting bytes it cannot check would turn every
// mixed-version deployment into an outage. Only a known algorithm with a
// mismatched sum fails.
func (d Digest) Verify(data []byte) bool {
	switch d.Algo {
	case DigestCRC32C:
		return crc32.Checksum(data, castagnoli) == d.Sum
	default:
		return true
	}
}
