// Package chunk defines chunk identity and the storage engines data
// providers run on. The paper's storage evolution is reproduced exactly:
// the initial prototype was RAM-only (MemStore), later extended with
// persistent storage keeping RAM as a cache (DiskStore wrapped by
// CachedStore, §IV-B).
//
// Chunks are immutable: a (blob, version, index) triple is written at most
// once, by the single writer that was assigned that version. Stores may
// therefore return internal buffers from Get; callers must not modify them.
package chunk

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrNotFound is returned when a chunk is not present in a store.
var ErrNotFound = errors.New("chunk: not found")

// Key identifies one chunk of one version of one blob.
type Key struct {
	Blob    uint64
	Version uint64
	Index   uint64
}

// String renders the key as blob/version/index.
func (k Key) String() string {
	return fmt.Sprintf("%d/%d/%d", k.Blob, k.Version, k.Index)
}

// Less orders keys lexicographically (blob, version, index).
func (k Key) Less(o Key) bool {
	if k.Blob != o.Blob {
		return k.Blob < o.Blob
	}
	if k.Version != o.Version {
		return k.Version < o.Version
	}
	return k.Index < o.Index
}

// Store is the chunk storage engine contract.
type Store interface {
	// Put stores data under k. Storing the same key twice is an error:
	// chunks are immutable and a duplicate Put indicates a protocol bug.
	Put(k Key, data []byte) error
	// Get returns the chunk bytes. The returned slice must not be
	// modified by the caller.
	Get(k Key) ([]byte, error)
	// GetRange returns the chunk's bytes in [off, off+length), clipped
	// to the stored size; length == 0 means "to the end of the chunk".
	// Reading past the stored size yields a short (possibly empty)
	// slice, not an error — only a missing key is ErrNotFound. Like
	// Get, the result may alias internal buffers and must not be
	// modified. Engines serve this without materializing the whole
	// chunk where they can (DiskStore reads only the requested bytes),
	// which is what lets boundary reads move only the bytes they need.
	GetRange(k Key, off, length uint64) ([]byte, error)
	// Has reports whether k is stored.
	Has(k Key) bool
	// Delete removes k (no-op if absent). Used only by garbage collection.
	Delete(k Key) error
	// Len reports the number of stored chunks.
	Len() int
	// Bytes reports the total payload bytes stored.
	Bytes() int64
	// Keys returns a sorted snapshot of all stored keys (for
	// re-replication after failures).
	Keys() []Key
	// Close releases resources.
	Close() error
}

// ErrDuplicate is returned by Put for a key that is already stored.
var ErrDuplicate = errors.New("chunk: duplicate put for immutable chunk")

// MemStore keeps chunks in RAM. The original BlobSeer prototype's storage
// engine (§IV-A).
type MemStore struct {
	mu    sync.RWMutex
	data  map[Key][]byte
	bytes int64
}

// NewMemStore creates an empty RAM store.
func NewMemStore() *MemStore {
	return &MemStore{data: make(map[Key][]byte)}
}

// Put stores a private copy of data under k.
func (s *MemStore) Put(k Key, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.data[k]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicate, k)
	}
	s.data[k] = cp
	s.bytes += int64(len(cp))
	return nil
}

// Get returns the stored bytes for k.
func (s *MemStore) Get(k Key) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.data[k]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, k)
	}
	return d, nil
}

// GetRange returns a sub-slice of the stored bytes (chunks are immutable,
// so slicing is safe).
func (s *MemStore) GetRange(k Key, off, length uint64) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.data[k]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, k)
	}
	return clipRange(d, off, length), nil
}

// Clip slices a whole chunk to the requested range, with the same
// clipping semantics as GetRange (length == 0 means "to the end"). Used
// by callers that must materialize a full chunk anyway — e.g. a provider
// verifying the digest before serving a sub-range.
func Clip(data []byte, off, length uint64) []byte {
	return clipRange(data, off, length)
}

// clipRange slices data to the clipBounds of [off, off+length).
func clipRange(data []byte, off, length uint64) []byte {
	lo, hi := clipBounds(uint64(len(data)), off, length)
	if lo >= hi {
		return nil
	}
	return data[lo:hi]
}

// clipBounds resolves a requested range [off, off+length) against a chunk
// of size bytes: length == 0 means "to the end", and both bounds clip to
// size. Offset and length arrive raw off the wire, so off+length
// overflowing uint64 must clamp to the end, not wrap below off.
func clipBounds(size, off, length uint64) (lo, hi uint64) {
	if off >= size {
		return size, size
	}
	hi = size
	if e := off + length; length > 0 && e >= off && e < hi {
		hi = e
	}
	return off, hi
}

// Has reports whether k is stored.
func (s *MemStore) Has(k Key) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.data[k]
	return ok
}

// Delete removes k if present.
func (s *MemStore) Delete(k Key) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.data[k]; ok {
		s.bytes -= int64(len(d))
		delete(s.data, k)
	}
	return nil
}

// Len reports the number of chunks.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Bytes reports total stored payload bytes.
func (s *MemStore) Bytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Keys returns all keys in sorted order.
func (s *MemStore) Keys() []Key {
	s.mu.RLock()
	out := make([]Key, 0, len(s.data))
	for k := range s.data {
		out = append(out, k)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Close is a no-op for RAM storage.
func (s *MemStore) Close() error { return nil }
