package fault_test

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/chunk"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/provider"
	"repro/internal/rpc"
)

func providerChunkTotal(c *cluster.Cluster) (chunks int, bytes int64) {
	for _, p := range c.Providers {
		chunks += p.Store().Len()
		bytes += p.Store().Bytes()
	}
	return chunks, bytes
}

// A write that dies after uploading chunks but before weaving metadata
// leaves orphans on the data providers: chunks keyed by a write ID that no
// tree will ever reference. The GC orphan sweep must reclaim them once
// they outlive the grace period — without touching the blob's live data.
func TestAbortedWriteOrphansReclaimed(t *testing.T) {
	c, err := cluster.Start(cluster.Config{
		DataProviders: 3,
		MetaProviders: 2,
		GCOrphanGrace: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cli, err := c.NewClient(cluster.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const chunkSize = 256
	blob, err := cli.CreateBlob(chunkSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{1}, 4*chunkSize)
	if _, err := blob.Write(payload, 0); err != nil {
		t.Fatal(err)
	}
	baseChunks, baseBytes := providerChunkTotal(c)

	// Fail a real write mid-flight: chunks upload fine, then the metadata
	// providers are unreachable, so weaving (and even abort-repair's
	// identity weave) fails and the writer aborts the version.
	for _, addr := range c.MetaAddrs() {
		c.Fabric.SetDown(addr, true)
	}
	_, err = blob.Write(bytes.Repeat([]byte{2}, 4*chunkSize), 0)
	if err == nil {
		t.Fatal("write with metadata providers down succeeded")
	}
	for _, addr := range c.MetaAddrs() {
		c.Fabric.SetDown(addr, false)
	}

	// A second flavor of orphan: a client that crashed after phase-1
	// upload, before the version manager ever heard of the write.
	probe := rpc.NewClientFrom(c.Network, 0, "crashed-client")
	defer probe.Close()
	orphanKey := chunk.Key{Blob: blob.ID(), Version: 1<<63 | 0xDEAD, Index: 0}
	if err := provider.PutChunk(probe, c.ProviderAddrs()[0], orphanKey, make([]byte, chunkSize)); err != nil {
		t.Fatal(err)
	}

	midChunks, _ := providerChunkTotal(c)
	if midChunks <= baseChunks {
		t.Fatalf("expected orphan chunks on providers: base %d, now %d", baseChunks, midChunks)
	}

	// Within the grace period nothing may be touched (the chunks could
	// belong to a write still in flight).
	if _, err := c.RunGC(); err != nil {
		t.Fatalf("gc during grace: %v", err)
	}
	if n, _ := providerChunkTotal(c); n != midChunks {
		t.Fatalf("gc reclaimed inside the grace period: %d -> %d chunks", midChunks, n)
	}

	// After the grace the sweep reclaims every orphan.
	time.Sleep(50 * time.Millisecond)
	stats, err := c.RunGC()
	if err != nil {
		t.Fatalf("gc after grace: %v", err)
	}
	if stats.Orphans == 0 {
		t.Fatalf("gc reported no orphans: %v", stats)
	}
	postChunks, postBytes := providerChunkTotal(c)
	if postChunks != baseChunks || postBytes != baseBytes {
		t.Fatalf("post-GC inventory %d chunks / %d bytes, want %d / %d",
			postChunks, postBytes, baseChunks, baseBytes)
	}

	// Live data is untouched; the aborted version reads as failed.
	buf := make([]byte, len(payload))
	if _, err := blob.Read(1, buf, 0); err != nil && err != io.EOF {
		t.Fatalf("read v1 after orphan sweep: %v", err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("live data corrupted by orphan sweep")
	}
	if _, err := blob.Read(2, buf, 0); !errors.Is(err, core.ErrFailedVersion) {
		t.Fatalf("read aborted v2: got %v, want ErrFailedVersion", err)
	}
}
