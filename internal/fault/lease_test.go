package fault_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/chunk"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/provider"
	"repro/internal/rpc"
	"repro/internal/vmanager"
)

// The PR acceptance scenario: a writer that vanishes between Assign and
// Commit must no longer wedge the blob. The lease lapses, the expiry loop
// aborts the version and weaves its identity tree server-side, and a
// fresh writer publishes within 2x the lease TTL — with the version
// manager left running the whole time (the seed needed a restart).
func TestWriterLeaseUnwedgesVanishedWriter(t *testing.T) {
	const leaseTTL = 250 * time.Millisecond
	c, err := cluster.Start(cluster.Config{
		DataProviders: 3,
		MetaProviders: 2,
		LeaseTTL:      leaseTTL,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cli, err := c.NewClient(cluster.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const chunkSize = 256
	blob, err := cli.CreateBlob(chunkSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	expected := stormPayload(1, 0, 4*chunkSize)
	if _, err := blob.Write(expected, 0); err != nil {
		t.Fatal(err)
	}

	// Writer A assigns chunks [0,2) of a new version and vanishes: no
	// upload, no weave, no commit, no heartbeat. Calling the manager
	// directly IS the crash simulation — a real client that dies right
	// after its Assign RPC leaves exactly this state behind.
	mgr := c.VM.Manager()
	wedge, err := mgr.Assign(&vmanager.AssignReq{BlobID: blob.ID(), Offset: 0, Size: 2 * chunkSize})
	if err != nil {
		t.Fatal(err)
	}
	if wedge.LeaseTTLMs != uint64(leaseTTL/time.Millisecond) {
		t.Fatalf("assign granted LeaseTTLMs = %d, want %d", wedge.LeaseTTLMs, leaseTTL/time.Millisecond)
	}
	deadline := time.Now().Add(2 * leaseTTL)

	// Writer B (a live client) overwrites chunk 0. The write is chunk-
	// aligned so it commits without serializing behind the wedged
	// version; only its PUBLICATION is held back.
	patch := stormPayload(1, 1, chunkSize)
	bVer, err := blob.Write(patch, 0)
	if err != nil {
		t.Fatal(err)
	}
	copy(expected, patch)

	// The frontier must reach B within 2x the lease TTL, no restart.
	for {
		latest, _, err := blob.Latest()
		if err == nil && latest == bVer {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("frontier still wedged %v after the dead Assign (latest %d, want %d)",
				2*leaseTTL, latest, bVer)
		}
		time.Sleep(5 * time.Millisecond)
	}
	wi, err := mgr.VersionInfo(blob.ID(), wedge.Version)
	if err != nil {
		t.Fatal(err)
	}
	if !wi.Failed {
		t.Fatalf("wedged version %d not aborted: %+v", wedge.Version, wi)
	}
	if st := mgr.LeaseStats(); st.Expired == 0 {
		t.Fatalf("lease stats report no expiries: %+v", st)
	}

	// B wove against the wedged version's in-flight descriptor, so a full
	// read of B descends through the aborted version's nodes for chunk 1
	// — which exist only because the expiry loop wove them server-side.
	buf := make([]byte, len(expected))
	if _, err := blob.Read(bVer, buf, 0); err != nil {
		t.Fatalf("full read through the woven abort: %v", err)
	}
	if !bytes.Equal(buf, expected) {
		t.Fatal("read through woven identity diverged from writer streams")
	}
	if unwoven := mgr.UnwovenAborts(); len(unwoven) != 0 {
		t.Fatalf("expiry left GC debt %+v, want server-side weave", unwoven)
	}

	// A later read-modify-write merges boundary chunks through the
	// repaired history without tripping over the abort.
	rmw := stormPayload(1, 2, chunkSize)
	rmwVer, err := blob.Write(rmw, chunkSize/2)
	if err != nil {
		t.Fatalf("read-modify-write over the woven abort: %v", err)
	}
	copy(expected[chunkSize/2:], rmw)
	buf = make([]byte, len(expected))
	if _, err := blob.Read(rmwVer, buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, expected) {
		t.Fatal("post-merge content diverged")
	}
}

// A writer that dies mid-upload leaves wedge + garbage: an assigned
// version holding the frontier and phase-1 chunks keyed by a write ID no
// tree will ever reference. The lease expiry un-wedges the frontier, and
// — because aborting the version re-equalizes Assigned and Published —
// the orphan sweep un-parks and reclaims the dead writer's chunks.
func TestWriterLeaseMidUploadCrashOrphansReclaimed(t *testing.T) {
	const leaseTTL = 300 * time.Millisecond
	c, err := cluster.Start(cluster.Config{
		DataProviders: 2,
		MetaProviders: 2,
		LeaseTTL:      leaseTTL,
		GCOrphanGrace: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cli, err := c.NewClient(cluster.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const chunkSize = 256
	blob, err := cli.CreateBlob(chunkSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	expected := stormPayload(2, 0, 2*chunkSize)
	if _, err := blob.Write(expected, 0); err != nil {
		t.Fatal(err)
	}
	baseChunks, _ := providerChunkTotal(c)

	// The doomed writer's phase-1 upload: two chunks keyed by its write
	// ID land on a provider, then Assign, then the crash.
	probe := rpc.NewClientFrom(c.Network, 0, "doomed-writer")
	defer probe.Close()
	const writeID = 1<<63 | 0xBEEF
	for i := uint64(0); i < 2; i++ {
		key := chunk.Key{Blob: blob.ID(), Version: writeID, Index: i}
		if err := provider.PutChunk(probe, c.ProviderAddrs()[0], key, make([]byte, chunkSize)); err != nil {
			t.Fatal(err)
		}
	}
	wedge, err := c.VM.Manager().Assign(&vmanager.AssignReq{BlobID: blob.ID(), Offset: 0, Size: 2 * chunkSize})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * leaseTTL)

	// While the version is wedged in flight the orphan sweep stays parked
	// — the chunks could belong to a writer about to weave them in.
	time.Sleep(40 * time.Millisecond) // past the orphan grace, inside the TTL
	if _, err := c.RunGC(); err != nil {
		t.Fatalf("gc while wedged: %v", err)
	}
	if n, _ := providerChunkTotal(c); n != baseChunks+2 {
		t.Fatalf("parked orphan sweep touched chunks: %d, want %d", n, baseChunks+2)
	}

	// The lease lapses and the expiry loop aborts the wedge.
	for {
		wi, err := c.VM.Manager().VersionInfo(blob.ID(), wedge.Version)
		if err != nil {
			t.Fatal(err)
		}
		if wi.Failed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("wedged version not expired %v after Assign", 2*leaseTTL)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Un-parked: the next sweep reclaims the dead writer's chunks.
	stats, err := c.RunGC()
	if err != nil {
		t.Fatalf("gc after expiry: %v", err)
	}
	if stats.Orphans == 0 {
		t.Fatalf("sweep reclaimed no orphans: %v", stats)
	}
	if n, _ := providerChunkTotal(c); n != baseChunks {
		t.Fatalf("provider chunks = %d after sweep, want %d", n, baseChunks)
	}

	// The blob is fully usable: append publishes and reads back.
	tail := stormPayload(2, 1, chunkSize)
	if _, _, err := blob.Append(tail); err != nil {
		t.Fatal(err)
	}
	expected = append(expected, tail...)
	verifyVersions(t, c, blob, expected)
}

// A slow-but-alive writer is not a dead one: renewal heartbeats keep the
// lease ahead of the expiry loop for as long as the upload takes, and the
// commit lands normally. Once the heartbeats stop, the next assigned
// version expires and a late commit is refused with the typed lease error
// across the RPC boundary.
func TestWriterLeaseRenewalKeepsSlowWriterAlive(t *testing.T) {
	const leaseTTL = 150 * time.Millisecond
	c, err := cluster.Start(cluster.Config{
		DataProviders: 1,
		MetaProviders: 1,
		LeaseTTL:      leaseTTL,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cli, err := c.NewClient(cluster.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := cli.CreateBlob(256, 1)
	if err != nil {
		t.Fatal(err)
	}

	// A raw writer that takes 3x the TTL between Assign and Commit,
	// heartbeating at TTL/2 the whole way.
	raw := rpc.NewClientFrom(c.Network, 0, "slow-writer")
	defer raw.Close()
	var assign vmanager.AssignResp
	if err := raw.Call(c.VMAddr(), vmanager.MethodAssign,
		&vmanager.AssignReq{BlobID: blob.ID(), Size: 256, Append: true}, &assign); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		time.Sleep(leaseTTL / 2)
		if err := raw.Call(c.VMAddr(), vmanager.MethodRenewLease,
			&vmanager.VersionRef{BlobID: blob.ID(), Version: assign.Version}, &vmanager.Ack{}); err != nil {
			t.Fatalf("renewal %d: %v", i, err)
		}
	}
	if err := raw.Call(c.VMAddr(), vmanager.MethodCommit,
		&vmanager.VersionRef{BlobID: blob.ID(), Version: assign.Version}, &vmanager.Ack{}); err != nil {
		t.Fatalf("commit after %v of renewed upload: %v", 3*leaseTTL, err)
	}
	var stats vmanager.LeaseStatsResp
	if err := raw.Call(c.VMAddr(), vmanager.MethodLeaseStats, &vmanager.Ack{}, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Renewed < 6 || stats.Expired != 0 {
		t.Fatalf("lease stats = %+v, want >=6 renewals and no expiries", stats)
	}

	// Same writer, no heartbeats: the version expires and the late commit
	// is told exactly why.
	var assign2 vmanager.AssignResp
	if err := raw.Call(c.VMAddr(), vmanager.MethodAssign,
		&vmanager.AssignReq{BlobID: blob.ID(), Size: 256, Append: true}, &assign2); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * leaseTTL)
	for {
		wi, err := c.VM.Manager().VersionInfo(blob.ID(), assign2.Version)
		if err != nil {
			t.Fatal(err)
		}
		if wi.Failed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("unrenewed version not expired %v after Assign", 2*leaseTTL)
		}
		time.Sleep(5 * time.Millisecond)
	}
	err = raw.Call(c.VMAddr(), vmanager.MethodCommit,
		&vmanager.VersionRef{BlobID: blob.ID(), Version: assign2.Version}, &vmanager.Ack{})
	var remote *rpc.RemoteError
	if !errors.As(err, &remote) || !strings.Contains(remote.Msg, "lease expired") {
		t.Fatalf("late commit = %v, want remote lease-expired refusal", err)
	}
}

// A client whose version is aborted under it mid-write gets the typed
// ErrLeaseExpired from its commit — never a silent publish of a version
// the manager already gave up on — and the GC sweep (not the dead
// client) is what makes the aborted versions whole again.
func TestWriterLeaseLateCommitTypedError(t *testing.T) {
	c, err := cluster.Start(cluster.Config{
		DataProviders: 2,
		MetaProviders: 2,
		LeaseTTL:      time.Minute, // leases on; expiry effectively never fires
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cli, err := c.NewClient(cluster.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const chunkSize = 256
	blob, err := cli.CreateBlob(chunkSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	expected := stormPayload(3, 0, 4*chunkSize)
	if _, err := blob.Write(expected, 0); err != nil {
		t.Fatal(err)
	}

	// A wedge writer vanishes; then client B starts an UNALIGNED write,
	// which serializes behind the wedge (boundary merge waits for its
	// predecessor to publish).
	mgr := c.VM.Manager()
	wedge, err := mgr.Assign(&vmanager.AssignReq{BlobID: blob.ID(), Offset: 0, Size: 2 * chunkSize})
	if err != nil {
		t.Fatal(err)
	}
	writeDone := make(chan error, 1)
	go func() {
		_, err := blob.Write(stormPayload(3, 1, chunkSize), chunkSize/2)
		writeDone <- err
	}()
	// Wait until B holds its version, then abort it under it — the same
	// transition lease expiry performs, made deterministic.
	bVersion := wedge.Version + 1
	retryTransient(t, "waiting for B's assign", func() error {
		status, err := mgr.GCStatus(blob.ID())
		if err != nil {
			return err
		}
		if status.Assigned < bVersion {
			return errors.New("B has not assigned yet")
		}
		return nil
	})
	if err := mgr.AbortWoven(blob.ID(), bVersion, false); err != nil {
		t.Fatal(err)
	}
	// Release B: abort the wedge so the frontier passes both versions.
	if err := mgr.AbortWoven(blob.ID(), wedge.Version, false); err != nil {
		t.Fatal(err)
	}
	if err := <-writeDone; !errors.Is(err, core.ErrLeaseExpired) {
		t.Fatalf("commit of an aborted-under-it write = %v, want core.ErrLeaseExpired", err)
	}

	// Both aborts were recorded unwoven; the GC sweep owes them identity
	// trees and settles the debt in one pass (B wove its real tree before
	// committing — the sweep tolerates those nodes and fills the rest).
	stats, err := c.RunGC()
	if err != nil {
		t.Fatalf("gc over unwoven aborts: %v", err)
	}
	if stats.Woven == 0 {
		t.Fatalf("gc wove nothing: %v", stats)
	}
	if unwoven := mgr.UnwovenAborts(); len(unwoven) != 0 {
		t.Fatalf("still unwoven after sweep: %+v", unwoven)
	}

	// The repaired history reads and merges cleanly.
	rmw := stormPayload(3, 2, chunkSize)
	rmwVer, err := blob.Write(rmw, chunkSize/2)
	if err != nil {
		t.Fatalf("read-modify-write over GC-woven aborts: %v", err)
	}
	copy(expected[chunkSize/2:], rmw)
	buf := make([]byte, len(expected))
	if _, err := blob.Read(rmwVer, buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, expected) {
		t.Fatal("post-repair content diverged")
	}
}
