package fault_test

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
)

func TestScheduleAppliesKillAndRevive(t *testing.T) {
	c, err := cluster.Start(cluster.Config{DataProviders: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	addrs := c.ProviderAddrs()
	r := fault.Start(c, fault.Schedule{
		{At: 10 * time.Millisecond, Kind: fault.Kill, Provider: 0},
		{At: 60 * time.Millisecond, Kind: fault.Revive, Provider: 0},
	})
	time.Sleep(35 * time.Millisecond)
	if !c.Fabric.IsDown(addrs[0]) {
		t.Error("provider 0 not killed")
	}
	r.Wait()
	if c.Fabric.IsDown(addrs[0]) {
		t.Error("provider 0 not revived")
	}
}

func TestStopCancelsPending(t *testing.T) {
	c, err := cluster.Start(cluster.Config{DataProviders: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := fault.Start(c, fault.Schedule{
		{At: 5 * time.Second, Kind: fault.Kill, Provider: 0},
	})
	r.Stop()
	if c.Fabric.IsDown(c.ProviderAddrs()[0]) {
		t.Error("cancelled kill still fired")
	}
}

func TestOutOfRangeProviderIgnored(t *testing.T) {
	c, err := cluster.Start(cluster.Config{DataProviders: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := fault.Start(c, fault.Schedule{
		{At: 0, Kind: fault.Kill, Provider: 99},
		{At: 0, Kind: fault.Kill, Provider: -1},
	})
	r.Wait() // must not panic
}

func TestDegradeThenCrashShape(t *testing.T) {
	s := fault.DegradeThenCrash([]int{2, 5}, time.Second, 10*time.Second, 2*time.Second, 3*time.Second, 1e5, 1e8)
	if len(s) != 8 {
		t.Fatalf("events = %d, want 8", len(s))
	}
	// First victim: degrade at 1s, kill at 3s, revive+restore at 6s.
	if s[0].Kind != fault.Degrade || s[0].At != time.Second || s[0].Provider != 2 {
		t.Errorf("s[0] = %+v", s[0])
	}
	if s[1].Kind != fault.Kill || s[1].At != 3*time.Second {
		t.Errorf("s[1] = %+v", s[1])
	}
	if s[2].Kind != fault.Revive || s[2].At != 6*time.Second {
		t.Errorf("s[2] = %+v", s[2])
	}
	// Second victim shifted by spacing.
	if s[4].At != 11*time.Second || s[4].Provider != 5 {
		t.Errorf("s[4] = %+v", s[4])
	}
	// No-revive variant.
	s2 := fault.DegradeThenCrash([]int{0}, 0, 0, time.Second, 0, 1e5, 1e8)
	if len(s2) != 2 {
		t.Errorf("no-revive events = %d, want 2", len(s2))
	}
}

func TestDegradeAppliesToFabric(t *testing.T) {
	c, err := cluster.Start(cluster.Config{DataProviders: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := fault.Start(c, fault.Schedule{
		{At: 0, Kind: fault.Degrade, Provider: 0, BandwidthBps: 1000},
	})
	r.Wait()
	// A 10 KB transfer at 1 KB/s should now be slow on the fabric clock.
	d, err := c.Fabric.Delay("x", c.ProviderAddrs()[0], 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if d < 5*time.Second {
		t.Errorf("degraded delay = %v, want ~10s", d)
	}
}
