package fault_test

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/vmanager"
)

// waitUntil polls cond until it holds or the timeout lapses.
func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The ISSUE acceptance scenario for the replicated control plane: a
// leader + one quorum standby, the leader kill -9'd in the middle of a
// write storm. No committed version may be lost (quorum replication means
// every acknowledged commit already lives on the standby), writes must
// resume within 2x the leadership TTL, and the rejoining ex-leader must
// come back fenced — serving typed not-leader redirects — and resync to
// byte-identical state.
func TestFailoverMidWriteStorm(t *testing.T) {
	const ttl = 1500 * time.Millisecond
	c, err := cluster.Start(cluster.Config{
		DataProviders:   3,
		MetaProviders:   2,
		MetaReplication: 2,
		DataDir:         t.TempDir(),
		// Same trade as TestCrashRecoveryMidWriteStorm: this test crashes
		// PROCESSES, so unfsync'd appends survive every crash staged here
		// and fsync only slows the storm under the race detector.
		NoFsyncWAL:      true,
		VMStandbys:      1,
		VMLeadershipTTL: ttl,
		CallTimeout:     10 * time.Second,
		// Generous provider liveness: under -race on a loaded machine,
		// starved heartbeats must not age providers out mid-failover and
		// compound the control-plane outage with an allocate-fail loop.
		HeartbeatTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const (
		writers     = 2
		writesEach  = 18
		payloadSize = 600
		chunkSize   = 256
	)
	blobs := make([]*core.Blob, writers)
	for i := range blobs {
		cli, err := c.NewClient(cluster.ClientOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := cli.CreateBlob(chunkSize, 2)
		if err != nil {
			t.Fatal(err)
		}
		blobs[i] = b
	}
	// Dedicated probe stack for the resume-latency measurement: its own
	// client and blob, so storm queueing does not pollute the clock.
	probeCli, err := c.NewClient(cluster.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	probeBlob, err := probeCli.CreateBlob(chunkSize, 2)
	if err != nil {
		t.Fatal(err)
	}

	lead := c.LeaderIndex()
	if lead < 0 {
		t.Fatal("no leader elected after start")
	}

	// Write storm: every write retried through the failover, explicit
	// offsets so retried duplicates stay byte-identical prefixes.
	expected := make([][]byte, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var off uint64
			for s := 0; s < writesEach; s++ {
				data := stormPayload(w, s, payloadSize)
				writeWithRetry(t, blobs[w], data, off)
				expected[w] = append(expected[w], data...)
				off += uint64(len(data))
				time.Sleep(2 * time.Millisecond)
			}
		}(w)
	}

	// Let the storm land some commits on the live leader, then kill -9 it:
	// RPC server dark instantly, nothing flushed, in-process HA halted.
	time.Sleep(150 * time.Millisecond)
	killedAt := time.Now()
	c.KillVMIndex(lead)

	// Failover clock: first successful write after the kill. The standby
	// must fence the old epoch and serve Assign/Publish within 2x the
	// leadership TTL (takeover fires at TTL + rank stagger + jitter; the
	// client re-resolves leadership through vm.whoisleader probing).
	var probePayload = stormPayload(99, 0, payloadSize)
	var resumed time.Duration
	for {
		if _, err := probeBlob.Write(probePayload, 0); err == nil {
			resumed = time.Since(killedAt)
			break
		}
		if time.Since(killedAt) > 30*time.Second {
			t.Fatal("writes never resumed after leader kill")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if resumed > 2*ttl {
		t.Errorf("writes resumed %v after leader kill, want <= %v", resumed, 2*ttl)
	}
	t.Logf("writes resumed %v after leader kill (budget %v)", resumed, 2*ttl)

	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Leadership moved to the standby, at a strictly higher epoch.
	newLead := c.LeaderIndex()
	if newLead < 0 || newLead == lead {
		t.Fatalf("leader after failover = instance %d, want a different live instance", newLead)
	}
	st := c.VMs[newLead].Manager().HAStatus()
	if st.Epoch < 2 {
		t.Errorf("post-failover epoch = %d, want >= 2 (old epoch fenced)", st.Epoch)
	}
	if st.Takeovers == 0 {
		t.Error("new leader reports zero takeovers")
	}

	// Zero committed versions lost: every write the storm acknowledged
	// reads back byte-identical through the new leader. (Retried ambiguous
	// commits may leave identical duplicates, so >= not ==.)
	for w := range blobs {
		if got := verifyVersions(t, c, blobs[w], expected[w]); got < writesEach {
			t.Errorf("blob %d: %d versions verified after failover, want >= %d (committed versions lost)",
				blobs[w].ID(), got, writesEach)
		}
	}

	// The ex-leader reboots. Its journal knows the old epoch, so it rejoins
	// as a standby, is fenced by the new epoch, and resyncs — divergent
	// journal tail truncated — until both managers hash to the same state.
	if err := c.RestartVMIndex(lead); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 30*time.Second, "ex-leader fenced to standby", func() bool {
		st := c.VMs[lead].Manager().HAStatus()
		return st.Role == "standby" && st.Leader == c.VMAddrs()[newLead]
	})
	waitUntil(t, 30*time.Second, "ex-leader resynced (digest convergence)", func() bool {
		return c.VMs[lead].Manager().StateDigest() == c.VMs[newLead].Manager().StateDigest()
	})
	waitUntil(t, 30*time.Second, "new leader sees a synced standby", func() bool {
		st := c.VMs[newLead].Manager().HAStatus()
		return len(st.Standbys) == 1 && st.Standbys[0].Synced && st.Standbys[0].AckSeq == st.StreamSeq
	})

	// A stale client that never heard about the failover and still talks
	// straight to the old leader gets a typed redirect naming the new one —
	// not a hang, not a wrong answer.
	dcli := rpc.NewClient(c.Network, 5*time.Second)
	defer dcli.Close()
	var resp vmanager.CreateResp
	err = dcli.Call(c.VMAddrs()[lead], vmanager.MethodCreate,
		&vmanager.CreateReq{ChunkSize: chunkSize, Replication: 1}, &resp)
	var rd *rpc.Redirect
	if !errors.As(err, &rd) {
		t.Fatalf("direct RPC to fenced ex-leader: err = %v, want rpc.Redirect", err)
	}
	if rd.Target != c.VMAddrs()[newLead] {
		t.Errorf("redirect target = %q, want new leader %q", rd.Target, c.VMAddrs()[newLead])
	}

	// And the deployment keeps taking writes with the rejoined standby
	// replicating them.
	for w := range blobs {
		extra := stormPayload(98, w, payloadSize)
		writeWithRetry(t, blobs[w], extra, uint64(len(expected[w])))
		expected[w] = append(expected[w], extra...)
		buf := make([]byte, len(expected[w]))
		if _, err := blobs[w].Read(0, buf, 0); err != nil {
			t.Fatalf("post-rejoin read of blob %d: %v", blobs[w].ID(), err)
		}
		if !bytes.Equal(buf, expected[w]) {
			t.Fatalf("post-rejoin write of blob %d corrupted", blobs[w].ID())
		}
	}
	waitUntil(t, 30*time.Second, "post-rejoin writes replicated", func() bool {
		return c.VMs[lead].Manager().StateDigest() == c.VMs[newLead].Manager().StateDigest()
	})
}

// A kill -9 of a quorum STANDBY must degrade gracefully: the leader keeps
// committing (a quorum of zero synced standbys passes), and the restarted
// standby catches back up to a byte-identical digest.
func TestStandbyCrashDoesNotBlockCommits(t *testing.T) {
	c, err := cluster.Start(cluster.Config{
		DataProviders:    2,
		MetaProviders:    1,
		DataDir:          t.TempDir(),
		NoFsyncWAL:       true,
		VMStandbys:       1,
		VMLeadershipTTL:  time.Second,
		CallTimeout:      10 * time.Second,
		HeartbeatTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cli, err := c.NewClient(cluster.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := cli.CreateBlob(256, 1)
	if err != nil {
		t.Fatal(err)
	}
	payload := stormPayload(1, 1, 600)
	writeWithRetry(t, b, payload, 0)

	lead := c.LeaderIndex()
	if lead < 0 {
		t.Fatal("no leader elected")
	}
	standby := 1 - lead
	c.KillVMIndex(standby)

	// Commits keep flowing while the group is degraded. The first write
	// may pay one quorum timeout (the leader demotes the dead standby),
	// so it goes through the retry helper; the rest must succeed directly.
	writeWithRetry(t, b, payload, uint64(len(payload)))
	for i := 2; i < 5; i++ {
		if _, err := b.Write(payload, uint64(i)*uint64(len(payload))); err != nil {
			t.Fatalf("write %d with dead standby: %v", i, err)
		}
	}

	if err := c.RestartVMIndex(standby); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 30*time.Second, "restarted standby resynced", func() bool {
		return c.VMs[standby].Manager().StateDigest() == c.VMs[lead].Manager().StateDigest()
	})
	if role := c.VMs[standby].Manager().HAStatus().Role; role != "standby" {
		t.Errorf("restarted instance role = %q, want standby", role)
	}
}
