package fault_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
)

// stormPayload is the deterministic content of one write: a retry after an
// ambiguous failure re-sends identical bytes, so a commit that landed but
// whose acknowledgment was lost leaves a duplicate version with identical
// content rather than corruption.
func stormPayload(blob, step int, size int) []byte {
	out := make([]byte, size)
	for i := range out {
		out[i] = byte(blob*31 + step*7 + i)
	}
	return out
}

// writeWithRetry pushes one write through daemon crashes: any error is
// retried until the deadline. Writes use explicit offsets (not appends),
// so a retry that follows an aborted attempt overwrites the exact same
// range — the hole an aborted version might leave is patched by its own
// retry, and every non-failed version's content is a strict prefix of the
// writer's stream.
func writeWithRetry(t *testing.T, blob *core.Blob, data []byte, off uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	backoff := 5 * time.Millisecond
	for {
		_, err := blob.Write(data, off)
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("write at %d never succeeded: %v", off, err)
			return
		}
		if os.Getenv("STORM_DEBUG") != "" {
			fmt.Fprintf(os.Stderr, "[%s] blob %d write@%d failed: %v\n", time.Now().Format("15:04:05.000"), blob.ID(), off, err)
		}
		// Exponential backoff: a fixed hot retry cadence across several
		// writers can flood the control plane faster than it recovers
		// from the staged crashes (a miniature metastable retry storm).
		time.Sleep(backoff)
		if backoff < 200*time.Millisecond {
			backoff *= 2
		}
	}
}

// retryTransient runs op, retrying briefly: immediately after a crash the
// client may hold a connection whose death it has not yet observed, so the
// first call can fail with a transport error before the redial heals it.
func retryTransient(t *testing.T, what string, op func() error) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := op()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: %v", what, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// verifyVersions reads every addressable version of the blob and checks it
// back byte-identical against the writer's stream: version content must be
// expected[:size]. Failed (aborted) versions are skipped; versions below
// the retention floor must fail with the typed reclaimed error. Returns
// how many versions were verified byte-identical.
func verifyVersions(t *testing.T, c *cluster.Cluster, blob *core.Blob, expected []byte) int {
	t.Helper()
	// Resolve through the current leader: on an HA group, instance 0 may be
	// a dead or stale ex-leader (without HA this is just instance 0).
	mgr := c.LeaderManager()
	var latest uint64
	retryTransient(t, "latest", func() error {
		var err error
		latest, _, err = blob.Latest()
		return err
	})
	verified := 0
	for v := uint64(1); v <= latest; v++ {
		vi, err := mgr.VersionInfo(blob.ID(), v)
		if err != nil {
			t.Fatalf("version info %d/%d: %v", blob.ID(), v, err)
		}
		if vi.Reclaimed {
			if _, err := blob.Read(v, make([]byte, 1), 0); !errors.Is(err, core.ErrVersionReclaimed) {
				t.Errorf("blob %d v%d below floor: read err = %v, want ErrVersionReclaimed", blob.ID(), v, err)
			}
			continue
		}
		if vi.Failed {
			continue // aborted write; readers skip it by contract
		}
		if vi.SizeBytes > uint64(len(expected)) {
			t.Fatalf("blob %d v%d claims %d bytes, writer only produced %d", blob.ID(), v, vi.SizeBytes, len(expected))
		}
		buf := make([]byte, vi.SizeBytes)
		if _, err := blob.Read(v, buf, 0); err != nil {
			t.Errorf("blob %d v%d unreadable: %v", blob.ID(), v, err)
			continue
		}
		if !bytes.Equal(buf, expected[:vi.SizeBytes]) {
			t.Errorf("blob %d v%d content diverged from writer stream", blob.ID(), v)
			continue
		}
		verified++
	}
	return verified
}

// The ISSUE acceptance scenario: a write storm during which the version
// manager and a metadata provider are each kill -9'd and restarted, then a
// quiesced crash of the whole durable control plane. No published version
// may be lost: every retained version reads back byte-identical, retention
// floors and GC statistics survive replay, and garbage collection still
// converges afterwards.
func TestCrashRecoveryMidWriteStorm(t *testing.T) {
	c, err := cluster.Start(cluster.Config{
		DataProviders:   3,
		MetaProviders:   2,
		MetaReplication: 2, // masks the single-meta outage mid-storm
		DataDir:         t.TempDir(),
		// This test kill -9s PROCESSES: unfsync'd appends reach the OS
		// before acknowledgment and therefore survive every crash staged
		// here, so fsync (the durable-harness default) only slows the
		// storm — badly enough under the race detector on a loaded CI
		// machine to flirt with the package timeout. Machine-crash
		// durability and group commit are covered by internal/durable's
		// tests and the E13 benchmark.
		NoFsyncWAL:  true,
		CallTimeout: 10 * time.Second,
		// Generous liveness detection, for the same reason the bench
		// harness uses it: under the race detector on a loaded machine,
		// host-side CPU starvation can delay heartbeats past a short
		// timeout, age every provider out of the manager, and tip the
		// retrying write storm into a self-sustaining allocate-fail loop.
		HeartbeatTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const (
		writers     = 3
		writesEach  = 25
		payloadSize = 600 // spans chunks of 256 unevenly: exercises merges
		chunkSize   = 256
	)
	blobs := make([]*core.Blob, writers)
	clients := make([]*core.Client, writers)
	for i := range blobs {
		cli, err := c.NewClient(cluster.ClientOptions{})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = cli
		b, err := cli.CreateBlob(chunkSize, 2)
		if err != nil {
			t.Fatal(err)
		}
		blobs[i] = b
	}

	// Mid-storm control-plane crashes, via the schedule machinery: the
	// version manager dies and revives, then a metadata provider does.
	// Both are kill -9 (nothing flushed); revival replays the journals.
	runner := fault.Start(c, fault.Schedule{
		{At: 20 * time.Millisecond, Kind: fault.KillVManager},
		{At: 90 * time.Millisecond, Kind: fault.ReviveVManager},
		{At: 160 * time.Millisecond, Kind: fault.KillMetadata, Provider: 0},
		{At: 230 * time.Millisecond, Kind: fault.ReviveMetadata, Provider: 0},
	})
	defer runner.Stop()

	expected := make([][]byte, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var off uint64
			for s := 0; s < writesEach; s++ {
				data := stormPayload(w, s, payloadSize)
				writeWithRetry(t, blobs[w], data, off)
				expected[w] = append(expected[w], data...)
				off += uint64(len(data))
				time.Sleep(2 * time.Millisecond) // stretch the storm across the crash windows
			}
		}(w)
	}
	wg.Wait()
	runner.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Sanity before the final crash: everything written is readable.
	for w := range blobs {
		if got := verifyVersions(t, c, blobs[w], expected[w]); got == 0 {
			t.Fatalf("blob %d: no versions verified pre-crash", blobs[w].ID())
		}
	}

	// Install retention state that must survive replay.
	if err := blobs[0].SetRetention(5); err != nil {
		t.Fatal(err)
	}
	lat1, _, err := blobs[1].Latest()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := blobs[1].Prune(lat1 - 3); err != nil {
		t.Fatal(err)
	}
	preInfo := make([]string, writers)
	for w := range blobs {
		keep, floor, err := blobs[w].Retention()
		if err != nil {
			t.Fatal(err)
		}
		preInfo[w] = fmt.Sprintf("keep=%d floor=%d", keep, floor)
	}
	preStats := *c.VM.Manager().GCStats()

	// Quiesced kill -9 of the entire durable control plane, then revival.
	c.KillVM()
	c.KillMeta(0)
	c.KillMeta(1)
	if err := c.RestartVM(); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartMeta(0); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartMeta(1); err != nil {
		t.Fatal(err)
	}

	// Retention floors and GC statistics reconstructed exactly.
	for w := range blobs {
		var keep, floor uint64
		retryTransient(t, "retention after recovery", func() error {
			var err error
			keep, floor, err = blobs[w].Retention()
			return err
		})
		if got := fmt.Sprintf("keep=%d floor=%d", keep, floor); got != preInfo[w] {
			t.Errorf("blob %d retention after recovery = %s, want %s", blobs[w].ID(), got, preInfo[w])
		}
	}
	postStats := *c.VM.Manager().GCStats()
	if postStats != preStats {
		t.Errorf("gc stats after recovery = %+v, want %+v", postStats, preStats)
	}

	// Every retained version byte-identical; reclaimed ones typed.
	for w := range blobs {
		if got := verifyVersions(t, c, blobs[w], expected[w]); got == 0 {
			t.Errorf("blob %d: no versions verified after recovery", blobs[w].ID())
		}
	}

	// GC still converges: the pruned and retention-floored history drains
	// from the work queue within a few sweeps.
	converged := false
	for i := 0; i < 10; i++ {
		if _, err := c.RunGC(); err != nil {
			t.Fatalf("gc sweep %d: %v", i, err)
		}
		if len(c.VM.Manager().GCWork()) == 0 {
			converged = true
			break
		}
	}
	if !converged {
		t.Fatalf("GC did not converge after recovery: pending %v", c.VM.Manager().GCWork())
	}
	if st := c.VM.Manager().GCStats(); st.PrunedVersions == 0 {
		t.Errorf("no versions pruned by post-recovery GC: %+v", st)
	}
	// And the surviving tip still reads byte-identical after the sweep.
	for w := range blobs {
		if got := verifyVersions(t, c, blobs[w], expected[w]); got == 0 {
			t.Errorf("blob %d: nothing readable after GC", blobs[w].ID())
		}
	}

	// New writes keep flowing on the recovered deployment.
	extra := stormPayload(99, 0, payloadSize)
	for w := range blobs {
		writeWithRetry(t, blobs[w], extra, uint64(len(expected[w])))
		expected[w] = append(expected[w], extra...)
		buf := make([]byte, len(expected[w]))
		if _, err := blobs[w].Read(0, buf, 0); err != nil {
			t.Fatalf("post-recovery read of blob %d: %v", blobs[w].ID(), err)
		}
		if !bytes.Equal(buf, expected[w]) {
			t.Fatalf("post-recovery write of blob %d corrupted", blobs[w].ID())
		}
	}
}

// A volatile cluster (no DataDir) restarted in place must still come back
// serving — with empty state, which is precisely what the seed lost — so
// restart-in-place is usable for both durable and RAM-only experiments.
func TestRestartVolatileVMComesBackEmpty(t *testing.T) {
	c, err := cluster.Start(cluster.Config{DataProviders: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cli, err := c.NewClient(cluster.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.CreateBlob(256, 1); err != nil {
		t.Fatal(err)
	}
	c.KillVM()
	if err := c.RestartVM(); err != nil {
		t.Fatal(err)
	}
	var ids []uint64
	retryTransient(t, "list after volatile restart", func() error {
		var err error
		ids, err = cli.ListBlobs()
		return err
	})
	if len(ids) != 0 {
		t.Errorf("volatile restart kept blobs %v", ids)
	}
	if _, err := cli.CreateBlob(256, 1); err != nil {
		t.Fatalf("create after volatile restart: %v", err)
	}
}
