// Package fault injects provider failures into a running cluster,
// reproducing the §IV-E experimental conditions: "highly-concurrent data
// access patterns for long periods of service up-time while supporting
// failures of the physical storage components". Failures follow the
// pattern GloBeM is designed to catch: a provider first degrades (its NIC
// bandwidth collapses, latencies rise) and then crashes outright.
package fault

import (
	"sort"
	"time"

	"repro/internal/cluster"
)

// Kind enumerates failure-schedule actions.
type Kind int

// Schedule actions.
const (
	// Kill crashes a data provider (it drops off the network).
	Kill Kind = iota
	// Revive brings a crashed data provider back.
	Revive
	// Degrade throttles a provider's NIC to BandwidthBps.
	Degrade
	// Restore resets a degraded provider's NIC to RestoreBps.
	Restore
	// KillVManager crashes the version manager (kill -9: nothing flushed).
	KillVManager
	// ReviveVManager restarts the version manager in place, recovering
	// from its journal on durable deployments.
	ReviveVManager
	// KillMetadata crashes metadata provider Provider.
	KillMetadata
	// ReviveMetadata restarts metadata provider Provider in place,
	// replaying its node log on durable deployments.
	ReviveMetadata
)

// Event is one scheduled action.
type Event struct {
	At   time.Duration
	Kind Kind
	// Provider indexes the target service of its kind (data provider for
	// Kill/Revive/Degrade/Restore, metadata provider for the *Metadata
	// kinds; ignored by the version-manager kinds).
	Provider int
	// BandwidthBps applies to Degrade; RestoreBps to Restore.
	BandwidthBps float64
	RestoreBps   float64
}

// Schedule is a time-ordered list of events.
type Schedule []Event

// Runner applies a schedule to a cluster.
type Runner struct {
	c    *cluster.Cluster
	stop chan struct{}
	done chan struct{}
}

// Start launches schedule application; events fire relative to now.
func Start(c *cluster.Cluster, schedule Schedule) *Runner {
	r := &Runner{c: c, stop: make(chan struct{}), done: make(chan struct{})}
	events := append(Schedule(nil), schedule...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	go func() {
		defer close(r.done)
		start := time.Now()
		for _, ev := range events {
			wait := ev.At - time.Since(start)
			if wait > 0 {
				select {
				case <-r.stop:
					return
				case <-time.After(wait):
				}
			}
			r.apply(ev)
		}
	}()
	return r
}

func (r *Runner) apply(ev Event) {
	// Control-plane events first: they do not name a data provider.
	switch ev.Kind {
	case KillVManager:
		r.c.KillVM()
		return
	case ReviveVManager:
		_ = r.c.RestartVM() // next event or the workload observes failures
		return
	case KillMetadata:
		r.c.KillMeta(ev.Provider)
		return
	case ReviveMetadata:
		_ = r.c.RestartMeta(ev.Provider)
		return
	}
	addrs := r.c.ProviderAddrs()
	if ev.Provider < 0 || ev.Provider >= len(addrs) {
		return
	}
	switch ev.Kind {
	case Kill:
		r.c.KillProvider(ev.Provider)
	case Revive:
		r.c.ReviveProvider(ev.Provider)
	case Degrade:
		if r.c.Fabric != nil {
			r.c.Fabric.SetBandwidth(addrs[ev.Provider], ev.BandwidthBps)
		}
	case Restore:
		if r.c.Fabric != nil {
			r.c.Fabric.SetBandwidth(addrs[ev.Provider], ev.RestoreBps)
		}
	}
}

// Stop cancels pending events and waits for the runner to exit.
func (r *Runner) Stop() {
	close(r.stop)
	<-r.done
}

// Wait blocks until every event has fired.
func (r *Runner) Wait() { <-r.done }

// DegradeThenCrash builds the §IV-E failure pattern for a set of victims:
// victim i degrades at start + i*spacing (bandwidth drops to degradedBps),
// crashes lead later, and — when downFor > 0 — revives after downFor with
// its bandwidth restored to healthyBps.
func DegradeThenCrash(victims []int, start, spacing, lead, downFor time.Duration, degradedBps, healthyBps float64) Schedule {
	var s Schedule
	for i, v := range victims {
		t := start + time.Duration(i)*spacing
		s = append(s,
			Event{At: t, Kind: Degrade, Provider: v, BandwidthBps: degradedBps},
			Event{At: t + lead, Kind: Kill, Provider: v},
		)
		if downFor > 0 {
			s = append(s,
				Event{At: t + lead + downFor, Kind: Revive, Provider: v},
				Event{At: t + lead + downFor, Kind: Restore, Provider: v, RestoreBps: healthyBps},
			)
		}
	}
	return s
}
