package fault_test

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/chunk"
	"repro/internal/cluster"
)

// chunkKeyOn finds blob/index's chunk key by scanning provider i's
// inventory (tests cannot reconstruct the key a priori: its version field
// is the writer's private write ID, not the published version number).
func chunkKeyOn(t *testing.T, c *cluster.Cluster, i int, blob, index uint64) chunk.Key {
	t.Helper()
	for _, k := range c.Providers[i].Store().Keys() {
		if k.Blob == blob && k.Index == index {
			return k
		}
	}
	t.Fatalf("provider %d holds no chunk %d of blob %d", i, index, blob)
	return chunk.Key{}
}

// providerIndex maps a provider address back to its cluster slot.
func providerIndex(t *testing.T, c *cluster.Cluster, addr string) int {
	t.Helper()
	for i, a := range c.ProviderAddrs() {
		if a == addr {
			return i
		}
	}
	t.Fatalf("no provider at %s", addr)
	return -1
}

// The ISSUE acceptance scenario, detection half: with one replica of a
// repl-2 chunk bit-rotted, no reader may ever receive wrong bytes. The
// corrupted copy sits FIRST in placement order, so a fresh client (all
// health scores zero, stable sort preserves placement order) provably
// reads it, gets the provider's typed ErrChunkCorrupt instead of rot,
// and fails over to the good replica — concurrently, under -race.
func TestCorruptReplicaReadFailover(t *testing.T) {
	c, err := cluster.Start(cluster.Config{DataProviders: 3, MetaProviders: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	writer, err := c.NewClient(cluster.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const chunkSize = 256
	blob, err := writer.CreateBlob(chunkSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	expected := stormPayload(7, 0, 4*chunkSize)
	if _, err := blob.Write(expected, 0); err != nil {
		t.Fatal(err)
	}

	// Rot one byte of chunk 0's first-choice replica, in the store itself.
	locs, err := blob.Locations(0, 0, uint64(len(expected)))
	if err != nil {
		t.Fatal(err)
	}
	victim := providerIndex(t, c, locs[0].Providers[0])
	key := chunkKeyOn(t, c, victim, blob.ID(), 0)
	if err := c.CorruptChunk(victim, key, 5); err != nil {
		t.Fatal(err)
	}

	// Concurrent fresh readers: every read must return the pre-rot bytes.
	reader, err := c.NewClient(cluster.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rblob, err := reader.OpenBlob(blob.ID())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for r := 0; r < len(errs); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			buf := make([]byte, len(expected))
			if _, err := rblob.Read(0, buf, 0); err != nil {
				errs[r] = err
				return
			}
			if !bytes.Equal(buf, expected) {
				t.Errorf("reader %d got wrong bytes through corrupt replica", r)
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Errorf("reader %d: %v (failover should mask one corrupt replica)", r, err)
		}
	}

	// The client noticed the corruption (typed error, counted) and the
	// provider quarantined its copy the moment its pre-send check failed.
	if got := reader.IOStats().ChunkCorruptReads; got < 1 {
		t.Errorf("client ChunkCorruptReads = %d, want >= 1 (corrupt replica was first choice)", got)
	}
	ps := c.Providers[victim].StatsSnapshot()
	if ps.Corrupt < 1 || ps.Quarantined < 1 {
		t.Errorf("victim provider corrupt=%d quarantined=%d, want both >= 1", ps.Corrupt, ps.Quarantined)
	}
}

// The ISSUE acceptance scenario, healing half: a scrub pass finds the
// rotted copy with no reader involved, and one RunScrub call (scrub +
// chained repair) restores the replication degree — a verified copy on a
// fresh provider, the quarantined one deleted — with reads clean after.
func TestScrubRestoresDegree(t *testing.T) {
	testScrubRestoresDegree(t, cluster.Config{DataProviders: 3, MetaProviders: 1})
}

// Same scenario on the persistent engine: the rot lives in a chunk FILE
// (flipped on disk, cache dropped), the heal deletes that file, and the
// sidecar carries the digests.
func TestScrubRestoresDegreeDiskEngine(t *testing.T) {
	testScrubRestoresDegree(t, cluster.Config{DataProviders: 3, MetaProviders: 1, DataDir: t.TempDir()})
}

func testScrubRestoresDegree(t *testing.T, cfg cluster.Config) {
	c, err := cluster.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cli, err := c.NewClient(cluster.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const chunkSize = 256
	blob, err := cli.CreateBlob(chunkSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	expected := stormPayload(8, 0, 3*chunkSize)
	if _, err := blob.Write(expected, 0); err != nil {
		t.Fatal(err)
	}

	locs, err := blob.Locations(0, 0, uint64(len(expected)))
	if err != nil {
		t.Fatal(err)
	}
	victim := providerIndex(t, c, locs[0].Providers[0])
	key := chunkKeyOn(t, c, victim, blob.ID(), 0)
	if err := c.CorruptChunk(victim, key, 9); err != nil {
		t.Fatal(err)
	}

	st, err := c.RunScrub()
	if err != nil {
		t.Fatalf("scrub pass: %v", err)
	}
	if st.CorruptFound != 1 {
		t.Errorf("scrub CorruptFound = %d, want 1", st.CorruptFound)
	}
	if st.ChunksScanned < 6 { // 3 chunks x repl 2
		t.Errorf("scrub ChunksScanned = %d, want >= 6", st.ChunksScanned)
	}

	// Degree restored within the one pass: two verified copies live again,
	// the quarantined copy is gone, nothing is left flagged anywhere.
	copies := 0
	for i := range c.Providers {
		if c.Providers[i].Store().Has(key) {
			copies++
		}
		if q := c.Providers[i].StatsSnapshot().Quarantined; q != 0 {
			t.Errorf("provider %d still quarantines %d copies after heal", i, q)
		}
	}
	if copies != 2 {
		t.Errorf("chunk %s on %d providers after heal, want 2", key, copies)
	}
	if c.Providers[victim].Store().Has(key) {
		t.Error("corrupt copy still present on victim provider after purge")
	}

	// The pass counters aggregated at the version manager: scrub totals
	// from the scrub engine, the purge from the chained repair pass.
	mgr := c.VM.Manager()
	if sc := mgr.ScrubStats(); sc.Passes < 1 || sc.CorruptFound < 1 {
		t.Errorf("vmanager scrub totals = %+v, want passes and corrupt-found >= 1", sc)
	}
	if rt := mgr.RepairStats(); rt.CorruptPurged < 1 || rt.ReReplicated < 1 {
		t.Errorf("vmanager repair totals corrupt-purged=%d re-replicated=%d, want both >= 1",
			rt.CorruptPurged, rt.ReReplicated)
	}

	// End to end: the healed blob reads back byte-identical.
	buf := make([]byte, len(expected))
	if _, err := blob.Read(0, buf, 0); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if !bytes.Equal(buf, expected) {
		t.Fatal("healed blob reads back wrong bytes")
	}

	// And a second pass over the healed cluster is clean.
	st, err = c.RunScrub()
	if err != nil {
		t.Fatal(err)
	}
	if st.CorruptFound != 0 {
		t.Errorf("second scrub pass found %d corrupt copies, want 0", st.CorruptFound)
	}
}
