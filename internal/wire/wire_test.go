package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripScalars(t *testing.T) {
	enc := NewEncoder(0)
	enc.PutU8(0xAB)
	enc.PutBool(true)
	enc.PutBool(false)
	enc.PutU16(0xBEEF)
	enc.PutU32(0xDEADBEEF)
	enc.PutU64(0x0123456789ABCDEF)
	enc.PutI64(-42)
	enc.PutF64(3.14159)
	enc.PutString("blobseer")
	enc.PutBytes([]byte{1, 2, 3})
	enc.PutBytes(nil)

	dec := NewDecoder(enc.Bytes())
	if got := dec.U8(); got != 0xAB {
		t.Errorf("U8 = %#x, want 0xAB", got)
	}
	if !dec.Bool() || dec.Bool() {
		t.Errorf("Bool sequence mismatch")
	}
	if got := dec.U16(); got != 0xBEEF {
		t.Errorf("U16 = %#x", got)
	}
	if got := dec.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := dec.U64(); got != 0x0123456789ABCDEF {
		t.Errorf("U64 = %#x", got)
	}
	if got := dec.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := dec.F64(); got != 3.14159 {
		t.Errorf("F64 = %v", got)
	}
	if got := dec.String(); got != "blobseer" {
		t.Errorf("String = %q", got)
	}
	if got := dec.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := dec.Bytes(); len(got) != 0 {
		t.Errorf("empty Bytes = %v", got)
	}
	if err := dec.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if dec.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", dec.Remaining())
	}
}

func TestTruncation(t *testing.T) {
	enc := NewEncoder(0)
	enc.PutU64(7)
	full := enc.Bytes()
	for cut := 0; cut < len(full); cut++ {
		dec := NewDecoder(full[:cut])
		_ = dec.U64()
		if dec.Err() == nil {
			t.Fatalf("cut=%d: expected truncation error", cut)
		}
	}
}

func TestTruncatedLengthPrefix(t *testing.T) {
	enc := NewEncoder(0)
	enc.PutU32(100) // claims 100 bytes follow; none do
	dec := NewDecoder(enc.Bytes())
	if b := dec.Bytes(); b != nil {
		t.Errorf("Bytes = %v, want nil", b)
	}
	if dec.Err() != ErrTruncated {
		t.Errorf("Err = %v, want ErrTruncated", dec.Err())
	}
}

func TestOversizedLengthPrefix(t *testing.T) {
	enc := NewEncoder(0)
	enc.PutU32(MaxChunk + 1)
	dec := NewDecoder(enc.Bytes())
	if b := dec.Bytes(); b != nil {
		t.Errorf("Bytes = %v, want nil", b)
	}
	if dec.Err() != ErrTooLarge {
		t.Errorf("Err = %v, want ErrTooLarge", dec.Err())
	}
}

func TestErrorLatches(t *testing.T) {
	dec := NewDecoder(nil)
	_ = dec.U64() // fails
	first := dec.Err()
	_ = dec.U32()
	_ = dec.String()
	if dec.Err() != first {
		t.Errorf("error did not latch: %v then %v", first, dec.Err())
	}
}

func TestBytesCopyIndependence(t *testing.T) {
	enc := NewEncoder(0)
	enc.PutBytes([]byte("hello"))
	buf := append([]byte(nil), enc.Bytes()...)
	dec := NewDecoder(buf)
	got := dec.BytesCopy()
	buf[4] = 'X' // corrupt the backing buffer after decode
	if string(got) != "hello" {
		t.Errorf("BytesCopy aliased the input buffer: %q", got)
	}
}

// property: any sequence of (u64, string, bytes, f64) encodes and decodes
// identically.
func TestQuickRoundTrip(t *testing.T) {
	f := func(a uint64, s string, b []byte, x float64, flag bool) bool {
		enc := NewEncoder(0)
		enc.PutU64(a)
		enc.PutString(s)
		enc.PutBytes(b)
		enc.PutF64(x)
		enc.PutBool(flag)
		dec := NewDecoder(enc.Bytes())
		ga := dec.U64()
		gs := dec.String()
		gb := dec.Bytes()
		gx := dec.F64()
		gf := dec.Bool()
		if dec.Err() != nil || dec.Remaining() != 0 {
			return false
		}
		sameF := gx == x || (math.IsNaN(gx) && math.IsNaN(x))
		return ga == a && gs == s && bytes.Equal(gb, b) && sameF && gf == flag
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// property: a Decoder over random garbage never panics and either errors or
// consumes bounded bytes.
func TestQuickNoPanicOnGarbage(t *testing.T) {
	f := func(garbage []byte) bool {
		dec := NewDecoder(garbage)
		_ = dec.U32()
		_ = dec.Bytes()
		_ = dec.String()
		_ = dec.U64()
		return true // reaching here without panic is the property
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	payload := make([]byte, 4096)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	enc := NewEncoder(8192)
	for i := 0; i < b.N; i++ {
		enc.Reset()
		enc.PutU64(uint64(i))
		enc.PutString("chunk.put")
		enc.PutBytes(payload)
	}
}

func BenchmarkDecode(b *testing.B) {
	enc := NewEncoder(8192)
	enc.PutU64(99)
	enc.PutString("chunk.put")
	enc.PutBytes(make([]byte, 4096))
	buf := enc.Bytes()
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dec := NewDecoder(buf)
		_ = dec.U64()
		_ = dec.String()
		_ = dec.Bytes()
		if dec.Err() != nil {
			b.Fatal(dec.Err())
		}
	}
}
