package wire

import (
	"bytes"
	"testing"
)

// FuzzDecoder feeds arbitrary bytes through every decode primitive. The
// invariants: no panic, no allocation explosion (length prefixes are
// bounded by MaxChunk), and once the first error latches every subsequent
// read returns a zero value.
func FuzzDecoder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add(bytes.Repeat([]byte{0xFF}, 64)) // huge length prefixes
	e := NewEncoder(64)
	e.PutU64(42)
	e.PutString("hello")
	e.PutBytes([]byte{1, 2, 3})
	e.PutBool(true)
	e.PutF64(3.14)
	f.Add(append([]byte(nil), e.Bytes()...))

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		_ = d.U8()
		_ = d.Bool()
		_ = d.U16()
		_ = d.U32()
		_ = d.U64()
		_ = d.I64()
		_ = d.F64()
		_ = d.Bytes()
		_ = d.BytesCopy()
		_ = d.String()
		if d.Err() != nil {
			// Latched error: everything after must be zero.
			if v := d.U64(); v != 0 {
				t.Fatalf("read after latched error returned %d", v)
			}
			if b := d.Bytes(); b != nil {
				t.Fatalf("read after latched error returned %d bytes", len(b))
			}
		}
		if d.Remaining() < 0 {
			t.Fatalf("negative remaining %d", d.Remaining())
		}
	})
}

// FuzzRoundTrip checks encode→decode identity for every primitive.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint32(0), "", []byte(nil), false, 0.0)
	f.Add(^uint64(0), ^uint32(0), "metadata", []byte{0xDE, 0xAD}, true, -1.5)

	f.Fuzz(func(t *testing.T, u64 uint64, u32 uint32, s string, b []byte, flag bool, fv float64) {
		e := NewEncoder(0)
		e.PutU64(u64)
		e.PutU32(u32)
		e.PutString(s)
		e.PutBytes(b)
		e.PutBool(flag)
		e.PutF64(fv)

		d := NewDecoder(e.Bytes())
		if got := d.U64(); got != u64 {
			t.Fatalf("u64 %d != %d", got, u64)
		}
		if got := d.U32(); got != u32 {
			t.Fatalf("u32 %d != %d", got, u32)
		}
		if got := d.String(); got != s {
			t.Fatalf("string %q != %q", got, s)
		}
		if got := d.BytesCopy(); !bytes.Equal(got, b) {
			t.Fatalf("bytes %v != %v", got, b)
		}
		if got := d.Bool(); got != flag {
			t.Fatalf("bool %v != %v", got, flag)
		}
		if got := d.F64(); got != fv && !(fv != fv && got != got) { // NaN-tolerant
			t.Fatalf("f64 %v != %v", got, fv)
		}
		if err := d.Err(); err != nil {
			t.Fatalf("round trip latched error: %v", err)
		}
		if d.Remaining() != 0 {
			t.Fatalf("%d bytes left after full decode", d.Remaining())
		}
	})
}
