// Package wire implements the binary encoding used by every BlobSeer
// message. It is a small, allocation-conscious, hand-rolled codec:
// fixed-width little-endian integers plus length-prefixed byte strings.
// Nothing on the hot path goes through reflection.
//
// An Encoder appends to an internal buffer; a Decoder consumes a buffer and
// latches the first error so call sites can decode a whole message and check
// Err() once at the end.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated is reported when a Decoder runs past the end of its buffer.
var ErrTruncated = errors.New("wire: truncated message")

// ErrTooLarge is reported when a length prefix exceeds MaxChunk.
var ErrTooLarge = errors.New("wire: length prefix too large")

// MaxChunk bounds any single length-prefixed field. It exists so a corrupt
// or malicious length prefix cannot make a Decoder allocate unbounded
// memory.
const MaxChunk = 1 << 30

// Encoder serializes values into a growing byte buffer.
// The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder with capacity preallocated for n bytes.
func NewEncoder(n int) *Encoder {
	return &Encoder{buf: make([]byte, 0, n)}
}

// Bytes returns the encoded message. The slice aliases the Encoder's
// internal buffer and is valid until the next Put call.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len reports the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset truncates the buffer, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// PutU8 appends a single byte.
func (e *Encoder) PutU8(v uint8) { e.buf = append(e.buf, v) }

// PutBool appends a bool as one byte.
func (e *Encoder) PutBool(v bool) {
	if v {
		e.PutU8(1)
	} else {
		e.PutU8(0)
	}
}

// PutU16 appends a little-endian uint16.
func (e *Encoder) PutU16(v uint16) {
	e.buf = binary.LittleEndian.AppendUint16(e.buf, v)
}

// PutU32 appends a little-endian uint32.
func (e *Encoder) PutU32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// PutU64 appends a little-endian uint64.
func (e *Encoder) PutU64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// PutI64 appends a little-endian int64.
func (e *Encoder) PutI64(v int64) { e.PutU64(uint64(v)) }

// PutF64 appends an IEEE-754 float64.
func (e *Encoder) PutF64(v float64) { e.PutU64(math.Float64bits(v)) }

// PutBytes appends a u32 length prefix followed by the raw bytes.
func (e *Encoder) PutBytes(b []byte) {
	e.PutU32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// PutString appends a u32 length prefix followed by the string bytes.
func (e *Encoder) PutString(s string) {
	e.PutU32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Decoder consumes a byte buffer produced by an Encoder. The first decode
// failure latches into err; subsequent reads return zero values.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a Decoder over buf. The Decoder does not copy buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first error encountered while decoding, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining reports the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail() {
	if d.err == nil {
		d.err = ErrTruncated
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 decodes a single byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool decodes a bool encoded as one byte.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// U16 decodes a little-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 decodes a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 decodes a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 decodes a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 decodes an IEEE-754 float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bytes decodes a u32-length-prefixed byte slice. The returned slice
// aliases the Decoder's buffer; callers that retain it must copy.
func (d *Decoder) Bytes() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if n > MaxChunk {
		d.err = ErrTooLarge
		return nil
	}
	return d.take(int(n))
}

// BytesCopy decodes a u32-length-prefixed byte slice into fresh memory.
func (d *Decoder) BytesCopy() []byte {
	b := d.Bytes()
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// String decodes a u32-length-prefixed string.
func (d *Decoder) String() string {
	b := d.Bytes()
	if b == nil {
		return ""
	}
	return string(b)
}

// Message is implemented by every RPC payload type in the system.
type Message interface {
	// Encode appends the message body to enc.
	Encode(enc *Encoder)
	// Decode consumes the message body from dec.
	Decode(dec *Decoder)
}

// Marshal encodes m into a fresh buffer.
func Marshal(m Message) []byte {
	enc := NewEncoder(64)
	m.Encode(enc)
	return enc.Bytes()
}

// Unmarshal decodes buf into m, returning a descriptive error on failure.
func Unmarshal(buf []byte, m Message) error {
	dec := NewDecoder(buf)
	m.Decode(dec)
	if err := dec.Err(); err != nil {
		return fmt.Errorf("wire: decoding %T: %w", m, err)
	}
	return nil
}
