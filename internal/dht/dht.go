// Package dht implements the consistent-hashing ring BlobSeer uses to
// spread metadata tree nodes over the metadata providers (§I-B2 of the
// paper: "a decentralized, DHT-based infrastructure").
//
// Each physical node is mapped to a configurable number of virtual points
// on a 64-bit ring; a key is served by the first point at or after its
// hash. Replica sets are the next R *distinct* physical nodes along the
// ring. Because BlobSeer metadata is immutable (versioning: nodes are
// written once and never modified), the ring needs no anti-entropy — the
// membership is fixed per deployment and replicas are written at Put time.
package dht

import (
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultVnodes is the virtual-node count used when NewRing gets zero.
const DefaultVnodes = 64

// Ring is a consistent-hash ring over named nodes. It is safe for
// concurrent use.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []point
	nodes  map[string]struct{}
}

type point struct {
	hash uint64
	node string
}

// NewRing creates a ring with the given number of virtual nodes per
// physical node (0 = DefaultVnodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]struct{})}
}

// HashString hashes an arbitrary string to a ring position.
func HashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// HashKey mixes a sequence of integers into a well-distributed 64-bit ring
// position (splitmix64 finalizer applied per word).
func HashKey(parts ...uint64) uint64 {
	var x uint64 = 0x9E3779B97F4A7C15
	for _, p := range parts {
		x ^= mix64(p + x)
	}
	return mix64(x)
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Add inserts a node (idempotent).
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	base := HashString(node)
	for i := 0; i < r.vnodes; i++ {
		// Mix the node hash with the vnode index through the splitmix
		// finalizer; raw FNV over "name#i" strings clusters badly.
		h := HashKey(base, uint64(i))
		r.points = append(r.points, point{hash: h, node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node and all its virtual points (idempotent).
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len reports the number of physical nodes.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Nodes returns a snapshot of the member node names (unordered).
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	return out
}

// Lookup returns the node owning key, or "" if the ring is empty.
func (r *Ring) Lookup(key uint64) string {
	owners := r.LookupN(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// LookupN returns up to n distinct nodes responsible for key, in replica
// order (owner first, then successors).
func (r *Ring) LookupN(key uint64, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}
