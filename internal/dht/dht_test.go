package dht

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestEmptyRing(t *testing.T) {
	r := NewRing(8)
	if got := r.Lookup(123); got != "" {
		t.Errorf("Lookup on empty ring = %q", got)
	}
	if got := r.LookupN(123, 3); got != nil {
		t.Errorf("LookupN on empty ring = %v", got)
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestAddRemoveIdempotent(t *testing.T) {
	r := NewRing(8)
	r.Add("a")
	r.Add("a")
	if r.Len() != 1 {
		t.Fatalf("Len = %d after double add", r.Len())
	}
	r.Remove("a")
	r.Remove("a")
	if r.Len() != 0 {
		t.Fatalf("Len = %d after double remove", r.Len())
	}
	r.Remove("ghost") // must not panic
}

func TestLookupDeterministic(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 5; i++ {
		r.Add(fmt.Sprintf("node%d", i))
	}
	for k := uint64(0); k < 1000; k++ {
		key := HashKey(k)
		if a, b := r.Lookup(key), r.Lookup(key); a != b {
			t.Fatalf("non-deterministic lookup for %d: %q vs %q", k, a, b)
		}
	}
}

func TestLookupNDistinctAndOrdered(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 6; i++ {
		r.Add(fmt.Sprintf("node%d", i))
	}
	for k := uint64(0); k < 200; k++ {
		key := HashKey(k, 7)
		owners := r.LookupN(key, 3)
		if len(owners) != 3 {
			t.Fatalf("LookupN returned %d owners", len(owners))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("duplicate owner %q in %v", o, owners)
			}
			seen[o] = true
		}
		if owners[0] != r.Lookup(key) {
			t.Fatalf("first replica %q != Lookup %q", owners[0], r.Lookup(key))
		}
	}
}

func TestLookupNClampedToMembership(t *testing.T) {
	r := NewRing(8)
	r.Add("a")
	r.Add("b")
	owners := r.LookupN(42, 5)
	if len(owners) != 2 {
		t.Fatalf("LookupN(_, 5) with 2 nodes = %v", owners)
	}
}

// Balance: with enough vnodes, key ownership should be roughly uniform.
func TestBalance(t *testing.T) {
	const nodes = 10
	const keys = 20000
	r := NewRing(128)
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("node%d", i))
	}
	counts := map[string]int{}
	for k := 0; k < keys; k++ {
		counts[r.Lookup(HashKey(uint64(k), 99))]++
	}
	want := float64(keys) / nodes
	for n, c := range counts {
		if math.Abs(float64(c)-want) > want*0.5 {
			t.Errorf("node %s owns %d keys, want within 50%% of %.0f", n, c, want)
		}
	}
}

// Stability: removing one node must only move keys that it owned.
func TestRemovalStability(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 8; i++ {
		r.Add(fmt.Sprintf("node%d", i))
	}
	before := make(map[uint64]string)
	for k := uint64(0); k < 5000; k++ {
		key := HashKey(k)
		before[key] = r.Lookup(key)
	}
	r.Remove("node3")
	moved, owned := 0, 0
	for key, owner := range before {
		now := r.Lookup(key)
		if owner == "node3" {
			owned++
			if now == "node3" {
				t.Fatalf("key %d still maps to removed node", key)
			}
			continue
		}
		if now != owner {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the removed node moved", moved)
	}
	if owned == 0 {
		t.Error("test vacuous: removed node owned no keys")
	}
}

// property: HashKey is deterministic and sensitive to each argument.
func TestQuickHashKey(t *testing.T) {
	f := func(a, b uint64) bool {
		if HashKey(a, b) != HashKey(a, b) {
			return false
		}
		// different order should (overwhelmingly) hash differently
		if a != b && HashKey(a, b) == HashKey(b, a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// property: LookupN always returns distinct nodes, first == Lookup.
func TestQuickLookupNInvariants(t *testing.T) {
	r := NewRing(32)
	for i := 0; i < 7; i++ {
		r.Add(fmt.Sprintf("n%d", i))
	}
	f := func(key uint64, n uint8) bool {
		want := int(n % 10)
		owners := r.LookupN(key, want)
		if want == 0 {
			return owners == nil
		}
		limit := want
		if limit > 7 {
			limit = 7
		}
		if len(owners) != limit {
			return false
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				return false
			}
			seen[o] = true
		}
		return owners[0] == r.Lookup(key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	r := NewRing(128)
	for i := 0; i < 50; i++ {
		r.Add(fmt.Sprintf("node%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Lookup(HashKey(uint64(i)))
	}
}

func BenchmarkLookupN3(b *testing.B) {
	r := NewRing(128)
	for i := 0; i < 50; i++ {
		r.Add(fmt.Sprintf("node%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.LookupN(HashKey(uint64(i)), 3)
	}
}
