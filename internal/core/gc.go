package core

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/rpc"
	"repro/internal/vmanager"
)

// Errors reported by the retention/GC client API.
var (
	// ErrVersionReclaimed marks reads of versions below a blob's retention
	// floor: the snapshot has been (or is being) garbage collected.
	ErrVersionReclaimed = errors.New("core: version reclaimed by retention policy")
	// ErrBlobDeleted marks operations on deleted blobs.
	ErrBlobDeleted = errors.New("core: blob deleted")
)

// mapVMError translates version-manager remote errors into the client
// library's typed errors. Errors cross the RPC boundary as strings, so the
// deleted-blob marker is matched by text (kept in sync with
// vmanager.ErrBlobDeleted).
func mapVMError(err error) error {
	if err == nil {
		return nil
	}
	var remote *rpc.RemoteError
	if errors.As(err, &remote) && strings.Contains(remote.Msg, "vmanager: blob deleted") {
		return fmt.Errorf("%w: %v", ErrBlobDeleted, err)
	}
	if errors.As(err, &remote) && strings.Contains(remote.Msg, "vmanager: lease expired") {
		return fmt.Errorf("%w: %v", ErrLeaseExpired, err)
	}
	return err
}

// SetRetention installs a keep-last-N retention policy on the blob: after
// every publish, versions older than the newest N become reclaimable and
// the next GC sweep frees their exclusive chunks and metadata. keepLast 0
// restores keep-all (the default), but never resurrects an already-raised
// floor.
func (b *Blob) SetRetention(keepLast uint64) error {
	err := b.c.vm.Call(vmanager.MethodSetRetention,
		&vmanager.RetentionReq{BlobID: b.id, KeepLast: keepLast}, &vmanager.Ack{})
	if err != nil {
		return fmt.Errorf("core: set retention of blob %d: %w", b.id, mapVMError(err))
	}
	return nil
}

// Prune makes versions 1..upTo reclaimable and returns the blob's new
// retention floor (the oldest version still readable). The newest
// published version can never be pruned. Reclamation is asynchronous:
// readers are refused immediately, space returns on the next GC sweep.
func (b *Blob) Prune(upTo uint64) (retainFrom uint64, err error) {
	var resp vmanager.PruneResp
	err = b.c.vm.Call(vmanager.MethodPrune,
		&vmanager.PruneReq{BlobID: b.id, UpTo: upTo}, &resp)
	if err != nil {
		return 0, fmt.Errorf("core: prune blob %d: %w", b.id, mapVMError(err))
	}
	return resp.RetainFrom, nil
}

// Retention reports the blob's retention policy and current floor.
func (b *Blob) Retention() (keepLast, retainFrom uint64, err error) {
	var info vmanager.InfoResp
	err = b.c.vm.Call(vmanager.MethodInfo, &vmanager.BlobRef{BlobID: b.id}, &info)
	if err != nil {
		return 0, 0, fmt.Errorf("core: retention of blob %d: %w", b.id, mapVMError(err))
	}
	return info.KeepLast, info.RetainFrom, nil
}

// DeleteBlob removes a blob outright: every subsequent operation on it
// fails with a deleted-blob error, and the next GC sweep reclaims all its
// chunks and metadata across the deployment. Deletion is idempotent.
func (c *Client) DeleteBlob(id uint64) error {
	err := c.vm.Call(vmanager.MethodDelete, &vmanager.BlobRef{BlobID: id}, &vmanager.Ack{})
	if err != nil {
		return fmt.Errorf("core: delete blob %d: %w", id, mapVMError(err))
	}
	return nil
}

// GCStats reports the deployment's cumulative garbage-collection totals as
// aggregated by the version manager.
type GCStats struct {
	// Chunks and Bytes count reclaimed chunk replicas and their payload.
	Chunks uint64
	Bytes  uint64
	// Nodes counts reclaimed metadata tree node replicas.
	Nodes uint64
	// Orphans counts chunks reclaimed from aborted writes.
	Orphans uint64
	// PrunedVersions counts versions fully swept.
	PrunedVersions uint64
	// PendingBlobs counts blobs with outstanding GC work.
	PendingBlobs uint64
}

// GCStats fetches the deployment-wide reclamation totals.
func (c *Client) GCStats() (*GCStats, error) {
	var resp vmanager.GCStatsResp
	if err := c.vm.Call(vmanager.MethodGCStats, &vmanager.Ack{}, &resp); err != nil {
		return nil, fmt.Errorf("core: gc stats: %w", err)
	}
	return &GCStats{
		Chunks:         resp.Chunks,
		Bytes:          resp.Bytes,
		Nodes:          resp.Nodes,
		Orphans:        resp.Orphans,
		PrunedVersions: resp.PrunedVersions,
		PendingBlobs:   resp.PendingBlobs,
	}, nil
}
