package core

import (
	"sort"
	"sync"
)

// providerHealth is the client-side quality-of-service feedback of §IV-E:
// an EWMA of observed per-provider operation cost (latency plus a penalty
// for failures). The read path orders replicas by this score, so a
// degraded-but-alive provider stops being the first choice after a few
// slow operations — without any global coordination.
type providerHealth struct {
	mu    sync.Mutex
	score map[string]float64
}

// ewmaWeight is the weight of the newest observation.
const ewmaWeight = 0.3

// errPenaltyMs is the cost (in milliseconds) charged for a failed op.
const errPenaltyMs = 500

func newProviderHealth() *providerHealth {
	return &providerHealth{score: make(map[string]float64)}
}

// observe folds one operation's outcome into the provider's score.
func (h *providerHealth) observe(addr string, ms float64, failed bool) {
	if addr == "" {
		return
	}
	if failed {
		ms += errPenaltyMs
	}
	h.mu.Lock()
	old, ok := h.score[addr]
	if !ok {
		h.score[addr] = ms
	} else {
		h.score[addr] = (1-ewmaWeight)*old + ewmaWeight*ms
	}
	h.mu.Unlock()
}

// order returns addrs sorted healthiest-first. Providers never observed
// score 0 (optimistic: they get probed). The sort is stable so placement
// order breaks ties.
func (h *providerHealth) order(addrs []string) []string {
	if len(addrs) < 2 {
		return addrs
	}
	type scored struct {
		addr string
		s    float64
	}
	items := make([]scored, len(addrs))
	h.mu.Lock()
	for i, a := range addrs {
		items[i] = scored{addr: a, s: h.score[a]}
	}
	h.mu.Unlock()
	sort.SliceStable(items, func(i, j int) bool { return items[i].s < items[j].s })
	out := make([]string, len(addrs))
	for i, it := range items {
		out[i] = it.addr
	}
	return out
}
