package core_test

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/vmanager"
)

func startCluster(t testing.TB, cfg cluster.Config) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func newClient(t testing.TB, c *cluster.Cluster, opts cluster.ClientOptions) *core.Client {
	t.Helper()
	cli, err := c.NewClient(opts)
	if err != nil {
		t.Fatal(err)
	}
	return cli
}

func pattern(n int, seed byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = seed + byte(i%251)
	}
	return p
}

func readAll(t *testing.T, b *core.Blob, version uint64) []byte {
	t.Helper()
	size, err := b.Size(version)
	if err != nil {
		t.Fatalf("Size(v%d): %v", version, err)
	}
	buf := make([]byte, size)
	if size == 0 {
		return buf
	}
	n, err := b.Read(version, buf, 0)
	if err != nil && err != io.EOF {
		t.Fatalf("Read(v%d): %v", version, err)
	}
	if uint64(n) != size {
		t.Fatalf("Read(v%d) = %d bytes, want %d", version, n, size)
	}
	return buf
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := startCluster(t, cluster.Config{})
	cli := newClient(t, c, cluster.ClientOptions{})
	blob, err := cli.CreateBlob(4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(64<<10, 1) // 16 chunks
	v, err := blob.Write(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("version = %d, want 1", v)
	}
	got := readAll(t, blob, v)
	if !bytes.Equal(got, data) {
		t.Fatal("read-back mismatch")
	}
	// Sub-range read across chunk boundaries.
	sub := make([]byte, 10000)
	n, err := blob.Read(v, sub, 3000)
	if err != nil || n != 10000 {
		t.Fatalf("sub-read = %d, %v", n, err)
	}
	if !bytes.Equal(sub, data[3000:13000]) {
		t.Fatal("sub-read mismatch")
	}
}

func TestVersioningKeepsHistory(t *testing.T) {
	c := startCluster(t, cluster.Config{})
	cli := newClient(t, c, cluster.ClientOptions{})
	blob, _ := cli.CreateBlob(1024, 1)

	d1 := pattern(8192, 10)
	v1, err := blob.Write(d1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the middle two chunks.
	d2 := pattern(2048, 200)
	v2, err := blob.Write(d2, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != v1+1 {
		t.Fatalf("v2 = %d", v2)
	}

	// Old snapshot intact.
	if got := readAll(t, blob, v1); !bytes.Equal(got, d1) {
		t.Fatal("v1 snapshot changed after overwrite")
	}
	// New snapshot shows overlay.
	want := append([]byte(nil), d1...)
	copy(want[2048:], d2)
	if got := readAll(t, blob, v2); !bytes.Equal(got, want) {
		t.Fatal("v2 mismatch")
	}
	// Latest resolves to v2.
	if got := readAll(t, blob, 0); !bytes.Equal(got, want) {
		t.Fatal("latest mismatch")
	}
}

func TestAppendGrowsBlob(t *testing.T) {
	c := startCluster(t, cluster.Config{})
	cli := newClient(t, c, cluster.ClientOptions{})
	blob, _ := cli.CreateBlob(512, 1)

	var want []byte
	for i := 0; i < 5; i++ {
		part := pattern(512*3, byte(i*40))
		v, off, err := blob.Append(part)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if off != uint64(len(want)) {
			t.Fatalf("append %d offset = %d, want %d", i, off, len(want))
		}
		if v != uint64(i+1) {
			t.Fatalf("append %d version = %d", i, v)
		}
		want = append(want, part...)
	}
	if got := readAll(t, blob, 0); !bytes.Equal(got, want) {
		t.Fatal("appended content mismatch")
	}
}

func TestUnalignedWriteAndAppendRMW(t *testing.T) {
	c := startCluster(t, cluster.Config{})
	cli := newClient(t, c, cluster.ClientOptions{})
	blob, _ := cli.CreateBlob(1000, 1)

	model := []byte{}
	apply := func(p []byte, off uint64) {
		need := int(off) + len(p)
		for len(model) < need {
			model = append(model, 0)
		}
		copy(model[off:], p)
	}

	// Unaligned initial write.
	w1 := pattern(2500, 1)
	if _, err := blob.Write(w1, 0); err != nil {
		t.Fatal(err)
	}
	apply(w1, 0)
	// Unaligned interior overwrite (starts and ends mid-chunk).
	w2 := pattern(777, 99)
	if _, err := blob.Write(w2, 150); err != nil {
		t.Fatal(err)
	}
	apply(w2, 150)
	// Unaligned append (blob size is 2500, mid-chunk).
	w3 := pattern(1300, 55)
	if _, off, err := blob.Append(w3); err != nil || off != 2500 {
		t.Fatalf("append: off=%d err=%v", off, err)
	}
	apply(w3, 2500)
	// Sparse write far past the end: the gap must read as zeros.
	w4 := pattern(100, 77)
	if _, err := blob.Write(w4, 6000); err != nil {
		t.Fatal(err)
	}
	apply(w4, 6000)

	if got := readAll(t, blob, 0); !bytes.Equal(got, model) {
		for i := range model {
			if got[i] != model[i] {
				t.Fatalf("content mismatch at byte %d: got %d want %d", i, got[i], model[i])
			}
		}
	}
}

func TestConcurrentAppenders(t *testing.T) {
	c := startCluster(t, cluster.Config{DataProviders: 8})
	const writers = 16
	const partSize = 4096 // chunk-aligned: fully parallel path
	cc := startClients(t, c, writers)
	blob, _ := cc[0].CreateBlob(1024, 1)

	var wg sync.WaitGroup
	offsets := make([]uint64, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b, err := cc[w].OpenBlob(blob.ID())
			if err != nil {
				t.Error(err)
				return
			}
			_, off, err := b.Append(pattern(partSize, byte(w+1)))
			if err != nil {
				t.Errorf("writer %d: %v", w, err)
				return
			}
			offsets[w] = off
		}(w)
	}
	wg.Wait()

	full := readAll(t, blob, 0)
	if len(full) != writers*partSize {
		t.Fatalf("size = %d, want %d", len(full), writers*partSize)
	}
	for w := 0; w < writers; w++ {
		got := full[offsets[w] : offsets[w]+partSize]
		if !bytes.Equal(got, pattern(partSize, byte(w+1))) {
			t.Errorf("writer %d range corrupted", w)
		}
	}
}

func startClients(t testing.TB, c *cluster.Cluster, n int) []*core.Client {
	t.Helper()
	out := make([]*core.Client, n)
	for i := range out {
		out[i] = newClient(t, c, cluster.ClientOptions{})
	}
	return out
}

func TestConcurrentWritersDisjointRanges(t *testing.T) {
	c := startCluster(t, cluster.Config{DataProviders: 8})
	const writers = 12
	const part = 8192
	cc := startClients(t, c, writers)
	blob, _ := cc[0].CreateBlob(2048, 1)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b, err := cc[w].OpenBlob(blob.ID())
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := b.Write(pattern(part, byte(w+1)), uint64(w*part)); err != nil {
				t.Errorf("writer %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()

	full := readAll(t, blob, 0)
	if len(full) != writers*part {
		t.Fatalf("size = %d", len(full))
	}
	for w := 0; w < writers; w++ {
		if !bytes.Equal(full[w*part:(w+1)*part], pattern(part, byte(w+1))) {
			t.Errorf("writer %d range corrupted", w)
		}
	}
}

// Readers working on a published snapshot must be completely undisturbed
// by concurrent writers — the paper's central read/write decoupling claim.
func TestReadersIsolatedFromWriters(t *testing.T) {
	c := startCluster(t, cluster.Config{DataProviders: 8})
	cli := newClient(t, c, cluster.ClientOptions{})
	blob, _ := cli.CreateBlob(1024, 1)
	base := pattern(32<<10, 7)
	v1, err := blob.Write(base, 0)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var writerWg sync.WaitGroup
	writerWg.Add(1)
	go func() {
		defer writerWg.Done()
		wcli := newClient(t, c, cluster.ClientOptions{})
		wb, err := wcli.OpenBlob(blob.ID())
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := wb.Write(pattern(4096, byte(i)), uint64((i%8)*4096)); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var readerWg sync.WaitGroup
	for r := 0; r < 8; r++ {
		readerWg.Add(1)
		go func() {
			defer readerWg.Done()
			rb, err := newClient(t, c, cluster.ClientOptions{}).OpenBlob(blob.ID())
			if err != nil {
				t.Error(err)
				return
			}
			buf := make([]byte, len(base))
			for i := 0; i < 20; i++ {
				n, err := rb.Read(v1, buf, 0)
				if err != nil && err != io.EOF {
					t.Errorf("reader: %v", err)
					return
				}
				if !bytes.Equal(buf[:n], base) {
					t.Error("reader observed writer interference on an immutable snapshot")
					return
				}
			}
		}()
	}
	readerWg.Wait()
	close(stop)
	writerWg.Wait()
}

func TestReplicationSurvivesProviderCrash(t *testing.T) {
	c := startCluster(t, cluster.Config{DataProviders: 4})
	cli := newClient(t, c, cluster.ClientOptions{})
	blob, _ := cli.CreateBlob(1024, 3) // 3 replicas
	data := pattern(16<<10, 3)
	v, err := blob.Write(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Kill one provider; every chunk still has two replicas.
	c.KillProvider(0)
	got := readAll(t, blob, v)
	if !bytes.Equal(got, data) {
		t.Fatal("read after provider crash mismatch")
	}
	// Kill a second one; still one replica left of every chunk.
	c.KillProvider(1)
	got = readAll(t, blob, v)
	if !bytes.Equal(got, data) {
		t.Fatal("read after two crashes mismatch")
	}
}

func TestWriteFailureAbortsVersion(t *testing.T) {
	c := startCluster(t, cluster.Config{DataProviders: 2})
	cli := newClient(t, c, cluster.ClientOptions{})
	blob, _ := cli.CreateBlob(1024, 1)
	if _, err := blob.Write(pattern(4096, 1), 0); err != nil {
		t.Fatal(err)
	}
	// Take the whole data plane down: the next write must fail cleanly.
	c.KillProvider(0)
	c.KillProvider(1)
	if _, _, err := blob.Append(pattern(4096, 2)); err == nil {
		t.Fatal("append succeeded with all providers down")
	}
	// The blob is not wedged: revive and write again.
	c.ReviveProvider(0)
	c.ReviveProvider(1)
	if _, _, err := blob.Append(pattern(4096, 3)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	// The aborted append consumed its assigned range, which reads back as
	// zeros (abort repair weaves an identity tree for the failed version).
	size, err := blob.Size(0)
	if err != nil {
		t.Fatal(err)
	}
	if size != 12288 {
		t.Fatalf("size = %d, want 12288", size)
	}
	full := readAll(t, blob, 0)
	if !bytes.Equal(full[:4096], pattern(4096, 1)) {
		t.Error("v1 range corrupted by abort")
	}
	for i, v := range full[4096:8192] {
		if v != 0 {
			t.Fatalf("aborted range byte %d = %d, want 0", i, v)
		}
	}
	if !bytes.Equal(full[8192:], pattern(4096, 3)) {
		t.Error("post-recovery append range corrupted")
	}
}

func TestReadValidation(t *testing.T) {
	c := startCluster(t, cluster.Config{})
	cli := newClient(t, c, cluster.ClientOptions{})
	blob, _ := cli.CreateBlob(1024, 1)

	// Reading an empty blob.
	buf := make([]byte, 10)
	if n, err := blob.Read(0, buf, 0); n != 0 || err != io.EOF {
		t.Errorf("read empty = %d, %v", n, err)
	}
	v, _ := blob.Write(pattern(2048, 1), 0)
	// Unpublished / unknown version.
	if _, err := blob.Read(v+5, buf, 0); err == nil {
		t.Error("read of unassigned version succeeded")
	}
	// Offset past EOF.
	if n, err := blob.Read(v, buf, 99999); n != 0 || err != io.EOF {
		t.Errorf("read past EOF = %d, %v", n, err)
	}
	// Short read at the tail.
	tail := make([]byte, 100)
	n, err := blob.Read(v, tail, 2000)
	if n != 48 || err != io.EOF {
		t.Errorf("tail read = %d, %v; want 48, EOF", n, err)
	}
}

func TestLocations(t *testing.T) {
	c := startCluster(t, cluster.Config{DataProviders: 4})
	cli := newClient(t, c, cluster.ClientOptions{})
	blob, _ := cli.CreateBlob(1024, 2)
	v, err := blob.Write(pattern(4096, 5), 0)
	if err != nil {
		t.Fatal(err)
	}
	locs, err := blob.Locations(v, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 4 {
		t.Fatalf("locations = %d, want 4", len(locs))
	}
	for i, l := range locs {
		if l.Offset != uint64(i*1024) || l.Length != 1024 {
			t.Errorf("loc %d = %+v", i, l)
		}
		if len(l.Providers) != 2 {
			t.Errorf("loc %d has %d replicas, want 2", i, len(l.Providers))
		}
	}
}

func TestMetadataCacheEffectiveness(t *testing.T) {
	c := startCluster(t, cluster.Config{})
	cli := newClient(t, c, cluster.ClientOptions{MetaCacheNodes: 4096})
	blob, _ := cli.CreateBlob(1024, 1)
	data := pattern(64<<10, 9)
	v, err := blob.Write(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	for i := 0; i < 5; i++ {
		if _, err := blob.Read(v, buf, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
	}
	hits, misses := cli.MetaCacheStats()
	if hits == 0 {
		t.Errorf("metadata cache never hit (hits=%d misses=%d)", hits, misses)
	}
	// Repeated reads of an immutable snapshot should be nearly all hits.
	if hits < misses {
		t.Errorf("cache ineffective: hits=%d misses=%d", hits, misses)
	}
}

func TestManyVersionsRandomizedAgainstModel(t *testing.T) {
	c := startCluster(t, cluster.Config{DataProviders: 6})
	cli := newClient(t, c, cluster.ClientOptions{MetaCacheNodes: 8192})
	blob, _ := cli.CreateBlob(512, 1)
	rng := rand.New(rand.NewSource(42))

	type snapshot struct {
		version uint64
		content []byte
	}
	var snaps []snapshot
	model := []byte{}
	for i := 0; i < 25; i++ {
		var off uint64
		size := 1 + rng.Intn(3000)
		if rng.Intn(3) == 0 || len(model) == 0 {
			off = uint64(len(model)) // append-like
		} else {
			off = uint64(rng.Intn(len(model)))
		}
		p := pattern(size, byte(i+1))
		v, err := blob.Write(p, off)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		need := int(off) + size
		for len(model) < need {
			model = append(model, 0)
		}
		copy(model[off:], p)
		snaps = append(snaps, snapshot{v, append([]byte(nil), model...)})
	}
	// Every historical snapshot must read back exactly.
	for _, s := range snaps {
		if got := readAll(t, blob, s.version); !bytes.Equal(got, s.content) {
			t.Fatalf("snapshot v%d mismatch", s.version)
		}
	}
}

func TestTCPClusterEndToEnd(t *testing.T) {
	c := startCluster(t, cluster.Config{UseTCP: true, DataProviders: 3, MetaProviders: 2})
	cli := newClient(t, c, cluster.ClientOptions{})
	blob, err := cli.CreateBlob(2048, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(32<<10, 11)
	v, err := blob.Write(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, blob, v); !bytes.Equal(got, data) {
		t.Fatal("TCP round trip mismatch")
	}
	if _, _, err := blob.Append(pattern(5000, 12)); err != nil {
		t.Fatal(err)
	}
	size, _ := blob.Size(0)
	if size != uint64(len(data)+5000) {
		t.Fatalf("size = %d", size)
	}
}

func TestOpenBlobAndList(t *testing.T) {
	c := startCluster(t, cluster.Config{})
	cli := newClient(t, c, cluster.ClientOptions{})
	b1, _ := cli.CreateBlob(1024, 1)
	b2, _ := cli.CreateBlob(2048, 2)
	ids, err := cli.ListBlobs()
	if err != nil || len(ids) != 2 {
		t.Fatalf("list = %v, %v", ids, err)
	}
	re, err := cli.OpenBlob(b2.ID())
	if err != nil {
		t.Fatal(err)
	}
	if re.ChunkSize() != 2048 || re.Replication() != 2 {
		t.Errorf("reopened blob = cs%d r%d", re.ChunkSize(), re.Replication())
	}
	if _, err := cli.OpenBlob(b1.ID() + 100); err == nil {
		t.Error("open of unknown blob succeeded")
	}
}

func TestWaitPublishedAcrossClients(t *testing.T) {
	c := startCluster(t, cluster.Config{})
	cli1 := newClient(t, c, cluster.ClientOptions{})
	cli2 := newClient(t, c, cluster.ClientOptions{})
	blob, _ := cli1.CreateBlob(1024, 1)

	done := make(chan error, 1)
	go func() {
		b2, err := cli2.OpenBlob(blob.ID())
		if err != nil {
			done <- err
			return
		}
		done <- b2.WaitPublished(1)
	}()
	time.Sleep(20 * time.Millisecond)
	if _, err := blob.Write(pattern(1024, 1), 0); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitPublished never returned")
	}
}

func TestErrFailedVersionSurfaced(t *testing.T) {
	c := startCluster(t, cluster.Config{DataProviders: 1})
	cli := newClient(t, c, cluster.ClientOptions{})
	blob, _ := cli.CreateBlob(1024, 1)
	if _, err := blob.Write(pattern(1024, 1), 0); err != nil {
		t.Fatal(err)
	}
	c.KillProvider(0)
	_, _, err := blob.Append(pattern(1024, 2))
	if err == nil {
		t.Fatal("append with dead provider succeeded")
	}
	c.ReviveProvider(0)
	if _, _, err := blob.Append(pattern(1024, 3)); err != nil {
		t.Fatal(err)
	}
	// Version 2 was aborted; reading it explicitly must fail with
	// ErrFailedVersion.
	buf := make([]byte, 10)
	_, err = blob.Read(2, buf, 0)
	if !errors.Is(err, core.ErrFailedVersion) {
		t.Fatalf("read of aborted version = %v, want ErrFailedVersion", err)
	}
}

func TestManyBlobsIsolated(t *testing.T) {
	c := startCluster(t, cluster.Config{})
	cli := newClient(t, c, cluster.ClientOptions{})
	blobs := make([]*core.Blob, 5)
	for i := range blobs {
		b, err := cli.CreateBlob(1024, 1)
		if err != nil {
			t.Fatal(err)
		}
		blobs[i] = b
		if _, err := b.Write(pattern(4096, byte(i+1)), 0); err != nil {
			t.Fatal(err)
		}
	}
	for i, b := range blobs {
		if got := readAll(t, b, 0); !bytes.Equal(got, pattern(4096, byte(i+1))) {
			t.Errorf("blob %d content bled across blobs", i)
		}
	}
}

// TestWritePutRPCBound asserts the write-plane batching acceptance bound:
// a cold 64-chunk aligned write at replication 2 against 4 providers is
// 128 chunk-replica store operations but at most 8 provider.putchunks
// round trips (it was 128 provider.put RPCs before grouping; the
// cross-rank per-address grouping typically lands at ~4).
func TestWritePutRPCBound(t *testing.T) {
	const chunkSize, chunks, repl, providers = 4096, 64, 2, 4
	c := startCluster(t, cluster.Config{DataProviders: providers})
	cli := newClient(t, c, cluster.ClientOptions{})
	blob, err := cli.CreateBlob(chunkSize, repl)
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(chunkSize*chunks, 9)
	v, err := blob.Write(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := cli.IOStats()
	if st.ChunkPutOps != chunks*repl {
		t.Errorf("ChunkPutOps = %d, want %d", st.ChunkPutOps, chunks*repl)
	}
	if st.ChunkPutRPCs > 2*providers {
		t.Errorf("64-chunk write at repl 2 issued %d putchunks RPCs, bound %d", st.ChunkPutRPCs, 2*providers)
	}
	if st.ChunkBytesOut != int64(len(data))*repl {
		t.Errorf("ChunkBytesOut = %d, want %d", st.ChunkBytesOut, len(data)*repl)
	}
	if got := readAll(t, blob, v); !bytes.Equal(got, data) {
		t.Fatal("read-back mismatch")
	}
	t.Logf("%d chunk-replica ops in %d putchunks RPCs", st.ChunkPutOps, st.ChunkPutRPCs)
}

// TestWriteRetryExcludesFailedProviders kills half the data plane right
// before a replicated write, so some replica sets consist entirely of
// dead providers (the provider manager has not aged them out yet). The
// per-chunk fallback must re-place those chunks on the survivors — the
// retry allocation excludes the providers that just failed, so it cannot
// hand back the dead pair — and the write must come out fully readable.
func TestWriteRetryExcludesFailedProviders(t *testing.T) {
	const chunkSize, chunks = 2048, 16
	c := startCluster(t, cluster.Config{DataProviders: 4})
	cli := newClient(t, c, cluster.ClientOptions{})
	blob, err := cli.CreateBlob(chunkSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	c.KillProvider(0)
	c.KillProvider(1)
	data := pattern(chunkSize*chunks, 17)
	v, err := blob.Write(data, 0)
	if err != nil {
		t.Fatalf("write with half the data plane dead: %v", err)
	}
	if got := readAll(t, blob, v); !bytes.Equal(got, data) {
		t.Fatal("read-back mismatch")
	}
	// Every stored replica must be on a survivor: the fallback may not
	// have re-selected the providers that just failed.
	dead := map[string]bool{c.ProviderAddrs()[0]: true, c.ProviderAddrs()[1]: true}
	locs, err := blob.Locations(v, 0, uint64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	for _, loc := range locs {
		if len(loc.Providers) == 0 {
			t.Fatalf("chunk at %d stored nowhere", loc.Offset)
		}
		for _, a := range loc.Providers {
			if dead[a] {
				t.Fatalf("chunk at %d placed on dead provider %s", loc.Offset, a)
			}
		}
	}
}

// TestWriteAfterTreelessAbortedVersion regression-tests the abort poison
// cascade: a version that is aborted WITHOUT its identity tree ever being
// woven (a crashed writer, or an abort repair that died with the control
// plane) used to wedge the blob — every later unaligned write's merge
// read "content as of prev" through the treeless version's missing root
// and failed, each retry aborting another treeless version behind it.
// Writers must instead resolve prior content from the newest non-failed
// version and succeed.
func TestWriteAfterTreelessAbortedVersion(t *testing.T) {
	c := startCluster(t, cluster.Config{DataProviders: 2})
	cli := newClient(t, c, cluster.ClientOptions{})
	blob, err := cli.CreateBlob(256, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := pattern(600, 5)
	if _, err := blob.Write(base, 0); err != nil {
		t.Fatal(err)
	}

	// Simulate the crashed writer: assign a version and abort it without
	// weaving anything — exactly what version-manager recovery (or a
	// repair that died mid-crash) leaves behind.
	raw := cli.RPC()
	var assign vmanager.AssignResp
	if err := raw.Call(c.VMAddr(), vmanager.MethodAssign,
		&vmanager.AssignReq{BlobID: blob.ID(), Offset: 100, Size: 300}, &assign); err != nil {
		t.Fatal(err)
	}
	if err := raw.Call(c.VMAddr(), vmanager.MethodAbort,
		&vmanager.AbortReq{BlobID: blob.ID(), Version: assign.Version}, &vmanager.Ack{}); err != nil {
		t.Fatal(err)
	}

	// An unaligned overwrite whose boundary merge needs prior content.
	upd := pattern(600, 9)
	v, err := blob.Write(upd, 300)
	if err != nil {
		t.Fatalf("write after treeless aborted version: %v", err)
	}
	got := readAll(t, blob, v)
	want := append(append([]byte{}, base[:300]...), upd...)
	if !bytes.Equal(got, want) {
		t.Fatal("content after treeless abort diverged")
	}

	// And appends (whole-tree weave referencing the published snapshot)
	// must also ride over the hole.
	tail := pattern(500, 13)
	v2, _, err := blob.Append(tail)
	if err != nil {
		t.Fatalf("append after treeless aborted version: %v", err)
	}
	got = readAll(t, blob, v2)
	if !bytes.Equal(got, append(want, tail...)) {
		t.Fatal("append content diverged")
	}

	// Retention + GC over a treeless failed FRONTIER version: the floor
	// must stop at the newest live version, so a sweep reclaims nothing
	// a future merge or weave still needs. (The floor passing the live
	// snapshot would re-open the cascade through the GC.)
	var assign2 vmanager.AssignResp
	if err := raw.Call(c.VMAddr(), vmanager.MethodAssign,
		&vmanager.AssignReq{BlobID: blob.ID(), Offset: 0, Size: 100}, &assign2); err != nil {
		t.Fatal(err)
	}
	if err := raw.Call(c.VMAddr(), vmanager.MethodAbort,
		&vmanager.AbortReq{BlobID: blob.ID(), Version: assign2.Version}, &vmanager.Ack{}); err != nil {
		t.Fatal(err)
	}
	if err := blob.SetRetention(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunGC(); err != nil {
		t.Fatalf("gc with failed frontier version: %v", err)
	}
	got = readAll(t, blob, v2)
	if !bytes.Equal(got, append(append([]byte{}, want...), tail...)) {
		t.Fatal("newest live version reclaimed or corrupted by GC under a failed frontier")
	}
	final := pattern(700, 21)
	vf, err := blob.Write(final, 450) // unaligned: merges through the swept history
	if err != nil {
		t.Fatalf("write after GC with failed frontier: %v", err)
	}
	got = readAll(t, blob, vf)
	wantF := append(append([]byte{}, want...), tail...)
	copy(wantF[450:], final)
	if !bytes.Equal(got, wantF) {
		t.Fatal("post-GC write content diverged")
	}
}
