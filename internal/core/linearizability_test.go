package core_test

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
)

// The paper claims all operations are linearizable [1]. Observable
// consequences we can check from the outside:
//
//  1. the published version number and the blob size are monotone
//     non-decreasing for every observer;
//  2. a version's content never changes once observed;
//  3. an append acknowledged to the writer is visible to every reader
//     that subsequently observes a version >= the append's version.
func TestLinearizabilityObservables(t *testing.T) {
	c, err := cluster.Start(cluster.Config{DataProviders: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	setup, err := c.NewClient(cluster.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := setup.CreateBlob(1024, 1)
	if err != nil {
		t.Fatal(err)
	}

	const writers = 6
	const appendsPerWriter = 10
	const part = 2048

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Writers: concurrent appends, each recording its acknowledged
	// version.
	type ack struct {
		version uint64
		offset  uint64
		seed    byte
	}
	acks := make(chan ack, writers*appendsPerWriter)
	for w := 0; w < writers; w++ {
		cli, err := c.NewClient(cluster.ClientOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := cli.OpenBlob(blob.ID())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < appendsPerWriter; i++ {
				seed := byte(w*appendsPerWriter + i + 1)
				v, off, err := b.Append(bytes.Repeat([]byte{seed}, part))
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				acks <- ack{version: v, offset: off, seed: seed}
			}
		}(w)
	}

	// Observers: poll Latest; versions and sizes must be monotone.
	for r := 0; r < 4; r++ {
		cli, err := c.NewClient(cluster.ClientOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := cli.OpenBlob(blob.ID())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastV, lastSize uint64
			for !stop.Load() {
				v, size, err := b.Latest()
				if err != nil {
					t.Errorf("observer %d: %v", r, err)
					return
				}
				if v < lastV || size < lastSize {
					t.Errorf("observer %d: non-monotone (v %d->%d, size %d->%d)",
						r, lastV, v, lastSize, size)
					return
				}
				lastV, lastSize = v, size
			}
		}(r)
	}

	// Collect every acknowledgment, then stop the observers.
	wgWriters := writers * appendsPerWriter
	collected := make([]ack, 0, wgWriters)
	for i := 0; i < wgWriters; i++ {
		collected = append(collected, <-acks)
	}
	stop.Store(true)
	wg.Wait()

	// Every acknowledged append is visible at its acknowledged version and
	// at the final version, with exactly the bytes written.
	reader, err := c.NewClient(cluster.ClientOptions{MetaCacheNodes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := reader.OpenBlob(blob.ID())
	if err != nil {
		t.Fatal(err)
	}
	finalV, finalSize, err := rb.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if finalSize != uint64(wgWriters*part) {
		t.Fatalf("final size = %d, want %d", finalSize, wgWriters*part)
	}
	if finalV != uint64(wgWriters) {
		t.Fatalf("final version = %d, want %d", finalV, wgWriters)
	}
	buf := make([]byte, part)
	for _, a := range collected {
		for _, v := range []uint64{a.version, finalV} {
			if _, err := rb.Read(v, buf, a.offset); err != nil && err != io.EOF {
				t.Fatalf("read v%d off %d: %v", v, a.offset, err)
			}
			if !bytes.Equal(buf, bytes.Repeat([]byte{a.seed}, part)) {
				t.Fatalf("append (seed %d) corrupted at v%d", a.seed, v)
			}
		}
	}
	// Content immutability: re-read a mid-history version twice.
	mid := finalV / 2
	first := make([]byte, 4096)
	second := make([]byte, 4096)
	if _, err := rb.Read(mid, first, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if _, err := rb.Read(mid, second, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("same version read twice returned different content")
	}
}

// Prune versus concurrent reads and writes: with a keep-last retention
// policy and the GC loop sweeping continuously underneath, a reader
// holding any version must observe either (a) exactly the bytes that
// version's writer stored, or (b) the typed reclaimed error — never torn
// data, never an unexplained failure. Writers must never be disturbed at
// all: the floor chases the publish frontier from behind.
func TestPruneConcurrentReadersAndWriters(t *testing.T) {
	c, err := cluster.Start(cluster.Config{
		DataProviders: 4,
		GCInterval:    2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	setup, err := c.NewClient(cluster.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const chunkSize = 512
	const logical = 4 * chunkSize
	blob, err := setup.CreateBlob(chunkSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := blob.SetRetention(3); err != nil {
		t.Fatal(err)
	}

	// Version v's content is fully determined by v (single writer), so
	// any reader can validate any version it manages to read.
	content := func(v uint64) []byte { return bytes.Repeat([]byte{byte(v%251) + 1}, logical) }

	const versions = 120
	var published atomic.Uint64
	var writerDone atomic.Bool // set even on writer failure, so readers always exit
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writerDone.Store(true)
		for v := uint64(1); v <= versions; v++ {
			got, err := blob.Write(content(v), 0)
			if err != nil {
				t.Errorf("writer: v%d: %v", v, err)
				return
			}
			if got != v {
				t.Errorf("writer: assigned v%d, want v%d", got, v)
				return
			}
			published.Store(v)
		}
	}()

	// Readers hammer random versions from the full history, including
	// long-reclaimed ones.
	var reclaimedSeen atomic.Int64
	for r := 0; r < 4; r++ {
		cli, err := c.NewClient(cluster.ClientOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := cli.OpenBlob(blob.ID())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			buf := make([]byte, logical)
			for {
				hi := published.Load()
				if hi == versions || writerDone.Load() {
					return
				}
				if hi == 0 {
					time.Sleep(time.Millisecond)
					continue
				}
				v := uint64(rng.Int63n(int64(hi))) + 1
				_, err := b.Read(v, buf, 0)
				switch {
				case err == nil || err == io.EOF:
					if !bytes.Equal(buf, content(v)) {
						t.Errorf("reader %d: v%d torn or corrupt", r, v)
						return
					}
				case errors.Is(err, core.ErrVersionReclaimed):
					reclaimedSeen.Add(1)
				default:
					t.Errorf("reader %d: v%d unexpected error: %v", r, v, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// The race must actually have been exercised: readers must have seen
	// the floor advance mid-run, or this test passes vacuously.
	if reclaimedSeen.Load() == 0 {
		t.Error("no reader ever observed ErrVersionReclaimed during the concurrent phase")
	}

	// The floor must have chased the writer: old versions are refused.
	_, err = blob.Read(1, make([]byte, logical), 0)
	if !errors.Is(err, core.ErrVersionReclaimed) {
		t.Fatalf("read of v1 after retention: got %v, want ErrVersionReclaimed", err)
	}
	// And the newest 3 versions all still read back exactly.
	buf := make([]byte, logical)
	for v := uint64(versions - 2); v <= versions; v++ {
		if _, err := blob.Read(v, buf, 0); err != nil && err != io.EOF {
			t.Fatalf("read retained v%d: %v", v, err)
		}
		if !bytes.Equal(buf, content(v)) {
			t.Fatalf("retained v%d corrupted", v)
		}
	}
}
