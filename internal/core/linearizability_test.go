package core_test

import (
	"bytes"
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
)

// The paper claims all operations are linearizable [1]. Observable
// consequences we can check from the outside:
//
//  1. the published version number and the blob size are monotone
//     non-decreasing for every observer;
//  2. a version's content never changes once observed;
//  3. an append acknowledged to the writer is visible to every reader
//     that subsequently observes a version >= the append's version.
func TestLinearizabilityObservables(t *testing.T) {
	c, err := cluster.Start(cluster.Config{DataProviders: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	setup, err := c.NewClient(cluster.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := setup.CreateBlob(1024, 1)
	if err != nil {
		t.Fatal(err)
	}

	const writers = 6
	const appendsPerWriter = 10
	const part = 2048

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Writers: concurrent appends, each recording its acknowledged
	// version.
	type ack struct {
		version uint64
		offset  uint64
		seed    byte
	}
	acks := make(chan ack, writers*appendsPerWriter)
	for w := 0; w < writers; w++ {
		cli, err := c.NewClient(cluster.ClientOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := cli.OpenBlob(blob.ID())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < appendsPerWriter; i++ {
				seed := byte(w*appendsPerWriter + i + 1)
				v, off, err := b.Append(bytes.Repeat([]byte{seed}, part))
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				acks <- ack{version: v, offset: off, seed: seed}
			}
		}(w)
	}

	// Observers: poll Latest; versions and sizes must be monotone.
	for r := 0; r < 4; r++ {
		cli, err := c.NewClient(cluster.ClientOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := cli.OpenBlob(blob.ID())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastV, lastSize uint64
			for !stop.Load() {
				v, size, err := b.Latest()
				if err != nil {
					t.Errorf("observer %d: %v", r, err)
					return
				}
				if v < lastV || size < lastSize {
					t.Errorf("observer %d: non-monotone (v %d->%d, size %d->%d)",
						r, lastV, v, lastSize, size)
					return
				}
				lastV, lastSize = v, size
			}
		}(r)
	}

	// Collect every acknowledgment, then stop the observers.
	wgWriters := writers * appendsPerWriter
	collected := make([]ack, 0, wgWriters)
	for i := 0; i < wgWriters; i++ {
		collected = append(collected, <-acks)
	}
	stop.Store(true)
	wg.Wait()

	// Every acknowledged append is visible at its acknowledged version and
	// at the final version, with exactly the bytes written.
	reader, err := c.NewClient(cluster.ClientOptions{MetaCacheNodes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := reader.OpenBlob(blob.ID())
	if err != nil {
		t.Fatal(err)
	}
	finalV, finalSize, err := rb.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if finalSize != uint64(wgWriters*part) {
		t.Fatalf("final size = %d, want %d", finalSize, wgWriters*part)
	}
	if finalV != uint64(wgWriters) {
		t.Fatalf("final version = %d, want %d", finalV, wgWriters)
	}
	buf := make([]byte, part)
	for _, a := range collected {
		for _, v := range []uint64{a.version, finalV} {
			if _, err := rb.Read(v, buf, a.offset); err != nil && err != io.EOF {
				t.Fatalf("read v%d off %d: %v", v, a.offset, err)
			}
			if !bytes.Equal(buf, bytes.Repeat([]byte{a.seed}, part)) {
				t.Fatalf("append (seed %d) corrupted at v%d", a.seed, v)
			}
		}
	}
	// Content immutability: re-read a mid-history version twice.
	mid := finalV / 2
	first := make([]byte, 4096)
	second := make([]byte, 4096)
	if _, err := rb.Read(mid, first, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if _, err := rb.Read(mid, second, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("same version read twice returned different content")
	}
}
