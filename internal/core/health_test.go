package core

import (
	"testing"
	"testing/quick"
)

func TestHealthOrderPrefersFastProviders(t *testing.T) {
	h := newProviderHealth()
	for i := 0; i < 10; i++ {
		h.observe("slow", 500, false)
		h.observe("fast", 2, false)
		h.observe("failing", 10, true)
	}
	got := h.order([]string{"failing", "slow", "fast"})
	if got[0] != "fast" {
		t.Errorf("order = %v, want fast first", got)
	}
	if got[2] != "failing" {
		t.Errorf("order = %v, want failing last (error penalty)", got)
	}
}

func TestHealthUnknownProvidersProbedFirst(t *testing.T) {
	h := newProviderHealth()
	h.observe("known", 50, false)
	got := h.order([]string{"known", "unknown"})
	if got[0] != "unknown" {
		t.Errorf("order = %v, want optimistic probe of unknown first", got)
	}
}

func TestHealthRecovers(t *testing.T) {
	h := newProviderHealth()
	for i := 0; i < 5; i++ {
		h.observe("a", 1000, true)
	}
	h.observe("b", 5, false)
	if h.order([]string{"a", "b"})[0] != "b" {
		t.Fatal("degraded provider preferred")
	}
	// Provider a becomes healthy: EWMA converges back down.
	for i := 0; i < 40; i++ {
		h.observe("a", 1, false)
		h.observe("b", 5, false)
	}
	if h.order([]string{"b", "a"})[0] != "a" {
		t.Fatal("recovered provider never preferred again")
	}
}

func TestHealthOrderStableAndComplete(t *testing.T) {
	h := newProviderHealth()
	f := func(seed uint8) bool {
		addrs := []string{"p0", "p1", "p2", "p3"}
		h.observe(addrs[int(seed)%4], float64(seed), seed%3 == 0)
		got := h.order(addrs)
		if len(got) != 4 {
			return false
		}
		seen := map[string]bool{}
		for _, a := range got {
			seen[a] = true
		}
		return len(seen) == 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Single-element and empty inputs pass through.
	if got := h.order([]string{"only"}); len(got) != 1 || got[0] != "only" {
		t.Errorf("single = %v", got)
	}
	if got := h.order(nil); got != nil {
		t.Errorf("nil = %v", got)
	}
}
