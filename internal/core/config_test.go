package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rpc"
)

// The fullness watermark steers retry placement away from nearly-full
// providers; a value outside (0, 1] would either exclude everything or
// nothing, so NewClient must reject it loudly instead of limping.
func TestFullnessWatermarkValidation(t *testing.T) {
	base := func() core.Config {
		return core.Config{
			Network:       rpc.NewSimNetwork(nil),
			VMAddr:        "vm",
			PMAddr:        "pm",
			MetaProviders: []string{"m0"},
		}
	}

	for _, w := range []float64{-0.1, 1.0001, 2} {
		cfg := base()
		cfg.FullnessWatermark = w
		if _, err := core.NewClient(cfg); err == nil || !strings.Contains(err.Error(), "FullnessWatermark") {
			t.Errorf("watermark %v: err = %v, want out-of-range rejection", w, err)
		}
	}
	for _, w := range []float64{0, 0.5, 0.85, 1} { // 0 means "use the default"
		cfg := base()
		cfg.FullnessWatermark = w
		cli, err := core.NewClient(cfg)
		if err != nil {
			t.Errorf("watermark %v: unexpected error %v", w, err)
			continue
		}
		cli.Close()
	}
}
