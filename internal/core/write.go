package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/chunk"
	"repro/internal/meta"
	"repro/internal/provider"
	"repro/internal/vmanager"
)

// writeJob is one chunk to upload: its index and fully merged content.
type writeJob struct {
	idx  uint64
	data []byte
}

// Write stores p at byte offset off, producing and returning a new version.
// The write may extend the blob; ranges between the old end and off (for
// sparse writes) read back as zeros. Unaligned boundaries are supported
// via read-modify-write of the boundary chunks, which serializes against
// the immediately preceding version; chunk-aligned writes never wait for
// any other writer.
func (b *Blob) Write(p []byte, off uint64) (uint64, error) {
	if len(p) == 0 {
		return 0, errors.New("core: empty write")
	}
	cs := b.chunkSize
	end := off + uint64(len(p))
	startChunk, endChunk := off/cs, (end+cs-1)/cs
	writeID := nextWriteID()

	// Phase 1 (pre-assign, fully parallel with all other writers): upload
	// every chunk whose content is entirely determined by p.
	var full []writeJob
	for i := startChunk; i < endChunk; i++ {
		lo, hi := i*cs, (i+1)*cs
		if lo >= off && hi <= end {
			full = append(full, writeJob{idx: i, data: p[lo-off : hi-off]})
		}
	}
	sets, err := b.c.allocate(len(full), b.replication)
	if err != nil {
		return 0, err
	}
	stored := make(map[uint64][]string, endChunk-startChunk)
	var mu chunkSetMu
	err = b.c.parallel(len(full), func(i int) error {
		got, err := b.putReplicas(chunk.Key{Blob: b.id, Version: writeID, Index: full[i].idx}, full[i].data, sets[i])
		if err != nil {
			return err
		}
		mu.set(stored, full[i].idx, got)
		return nil
	})
	if err != nil {
		return 0, err
	}

	// Phase 2: obtain the version and the concurrency context.
	var assign vmanager.AssignResp
	err = b.c.rpc.Call(b.c.cfg.VMAddr, vmanager.MethodAssign,
		&vmanager.AssignReq{BlobID: b.id, Offset: off, Size: uint64(len(p))}, &assign)
	if err != nil {
		return 0, fmt.Errorf("core: assign: %w", mapVMError(err))
	}
	return b.finishWrite(p, off, writeID, &assign, stored)
}

// Append adds p at the end of the blob, returning the new version and the
// byte offset the data landed at. Concurrent appenders receive disjoint
// contiguous ranges from the version manager and proceed in parallel.
func (b *Blob) Append(p []byte) (version, off uint64, err error) {
	if len(p) == 0 {
		return 0, 0, errors.New("core: empty append")
	}
	var assign vmanager.AssignResp
	err = b.c.rpc.Call(b.c.cfg.VMAddr, vmanager.MethodAssign,
		&vmanager.AssignReq{BlobID: b.id, Size: uint64(len(p)), Append: true}, &assign)
	if err != nil {
		return 0, 0, fmt.Errorf("core: assign append: %w", mapVMError(err))
	}
	writeID := nextWriteID()
	v, err := b.finishWrite(p, assign.Offset, writeID, &assign, map[uint64][]string{})
	if err != nil {
		return 0, 0, err
	}
	return v, assign.Offset, nil
}

// finishWrite completes a write after version assignment: upload any
// not-yet-stored chunks (including boundary chunks needing merge), weave
// the metadata tree, and commit. stored maps chunk index -> replica set
// for chunks already uploaded in phase 1. On unrecoverable failure the
// version is abort-repaired so publication never wedges and the version
// chain stays fully readable.
func (b *Blob) finishWrite(p []byte, off, writeID uint64, assign *vmanager.AssignResp, stored map[uint64][]string) (uint64, error) {
	v, err := b.finishWriteInner(p, off, writeID, assign, stored)
	if err != nil {
		b.abortRepair(assign)
		return 0, err
	}
	return v, nil
}

// abortRepair handles a failed write: it weaves an *identity* metadata
// tree for the assigned version — every leaf in the write range points at
// the previous snapshot's chunk (or zeros where the failed write grew the
// blob) — then marks the version aborted at the version manager. Later
// writers hold this version's in-flight descriptor and will reference its
// nodes, so the full intersecting node set must exist; reusing the weave
// with copied leaves produces exactly that set without moving any data.
func (b *Blob) abortRepair(assign *vmanager.AssignResp) {
	defer func() {
		// Publication must advance even if the repair itself failed.
		_ = b.c.rpc.Call(b.c.cfg.VMAddr, vmanager.MethodAbort,
			&vmanager.VersionRef{BlobID: b.id, Version: assign.Version}, &vmanager.Ack{})
	}()
	prev := assign.Version - 1
	// Repair reads the previous snapshot, so it serializes behind it; this
	// is a failure path, not the fast path.
	if prev > 0 {
		if err := b.WaitPublished(prev); err != nil {
			return
		}
	}
	leaves := make([]meta.ChunkRef, assign.EndChunk-assign.StartChunk)
	if prev > 0 {
		vi, err := b.versionInfo(prev)
		if err != nil {
			return
		}
		prevChunks := vi.SizeChunks
		lo := assign.StartChunk
		hi := minU64(assign.EndChunk, prevChunks)
		if hi > lo {
			prior, err := meta.CollectLeaves(b.c.meta, b.id, prev, prevChunks, lo, hi)
			if err != nil {
				return
			}
			copy(leaves, prior)
		}
	}
	nodes, _, err := meta.Weave(b.c.meta, meta.WeaveInput{
		Blob:          b.id,
		Version:       assign.Version,
		StartChunk:    assign.StartChunk,
		EndChunk:      assign.EndChunk,
		SizeChunks:    assign.SizeChunks,
		Leaves:        leaves,
		InFlight:      assign.InFlight,
		PubVersion:    assign.PubVersion,
		PubSizeChunks: assign.PubSizeChunks,
	})
	if err != nil {
		return
	}
	_ = b.c.meta.PutNodes(nodes)
}

func (b *Blob) finishWriteInner(p []byte, off, writeID uint64, assign *vmanager.AssignResp, stored map[uint64][]string) (uint64, error) {
	cs := b.chunkSize
	end := off + uint64(len(p))
	var mu chunkSetMu

	// Upload every chunk not handled in phase 1. Boundary chunks whose
	// prior bytes live inside the previous version's extent need a
	// read-modify-write against version assign.Version-1.
	var jobs []writeJob
	var rmwNeeded bool
	for i := assign.StartChunk; i < assign.EndChunk; i++ {
		if _, ok := stored[i]; ok {
			continue
		}
		chunkLo := i * cs
		length := assign.SizeBytes - chunkLo
		if length > cs {
			length = cs
		}
		data := make([]byte, length)
		// Bytes from p.
		srcLo, srcHi := maxU64(chunkLo, off), minU64(chunkLo+cs, end)
		copy(data[srcLo-chunkLo:], p[srcLo-off:srcHi-off])
		// Prior bytes (before and/or after the written range) that fall
		// inside the previous version's extent must be merged.
		if chunkLo < assign.PrevSizeBytes && (srcLo > chunkLo || (srcHi < chunkLo+length && srcHi < assign.PrevSizeBytes)) {
			rmwNeeded = true
		}
		jobs = append(jobs, writeJob{idx: i, data: data})
	}

	if rmwNeeded {
		if err := b.mergePrior(jobs, off, end, assign); err != nil {
			return 0, err
		}
	}

	if len(jobs) > 0 {
		sets, err := b.c.allocate(len(jobs), b.replication)
		if err != nil {
			return 0, err
		}
		err = b.c.parallel(len(jobs), func(i int) error {
			got, err := b.putReplicas(chunk.Key{Blob: b.id, Version: writeID, Index: jobs[i].idx}, jobs[i].data, sets[i])
			if err != nil {
				return err
			}
			mu.set(stored, jobs[i].idx, got)
			return nil
		})
		if err != nil {
			return 0, err
		}
	}

	// Weave and store the metadata tree.
	leaves := make([]meta.ChunkRef, assign.EndChunk-assign.StartChunk)
	for i := assign.StartChunk; i < assign.EndChunk; i++ {
		length := assign.SizeBytes - i*cs
		if length > cs {
			length = cs
		}
		leaves[i-assign.StartChunk] = meta.ChunkRef{
			Providers: stored[i],
			Key:       chunk.Key{Blob: b.id, Version: writeID, Index: i},
			Length:    uint32(length),
		}
	}
	nodes, _, err := meta.Weave(b.c.meta, meta.WeaveInput{
		Blob:          b.id,
		Version:       assign.Version,
		StartChunk:    assign.StartChunk,
		EndChunk:      assign.EndChunk,
		SizeChunks:    assign.SizeChunks,
		Leaves:        leaves,
		InFlight:      assign.InFlight,
		PubVersion:    assign.PubVersion,
		PubSizeChunks: assign.PubSizeChunks,
	})
	if err != nil {
		return 0, fmt.Errorf("core: weaving metadata for v%d: %w", assign.Version, err)
	}
	if err := b.c.meta.PutNodes(nodes); err != nil {
		return 0, fmt.Errorf("core: storing metadata for v%d: %w", assign.Version, err)
	}

	// Commit: the version manager publishes in order.
	err = b.c.rpc.Call(b.c.cfg.VMAddr, vmanager.MethodCommit,
		&vmanager.VersionRef{BlobID: b.id, Version: assign.Version}, &vmanager.Ack{})
	if err != nil {
		return 0, fmt.Errorf("core: commit v%d: %w", assign.Version, mapVMError(err))
	}
	return assign.Version, nil
}

// mergePrior overlays the previous version's bytes into the boundary
// chunks of an unaligned write. It waits for version-1 to publish — the
// one case where a writer serializes behind its predecessor — and reads
// the prior content of every affected chunk.
func (b *Blob) mergePrior(jobs []writeJob, off, end uint64, assign *vmanager.AssignResp) error {
	prev := assign.Version - 1
	if prev == 0 {
		return nil // nothing real to merge with; zeros are already in place
	}
	// Aborted predecessors are fine: abort repair guarantees every
	// published version (failed or not) has complete, readable metadata.
	if err := b.WaitPublished(prev); err != nil {
		return fmt.Errorf("core: waiting for v%d before merge: %w", prev, err)
	}
	cs := b.chunkSize
	for j := range jobs {
		idx, data := jobs[j].idx, jobs[j].data
		chunkLo := idx * cs
		if chunkLo >= assign.PrevSizeBytes {
			continue
		}
		srcLo, srcHi := maxU64(chunkLo, off), minU64(chunkLo+cs, end)
		// Merge the head [chunkLo, srcLo).
		if srcLo > chunkLo {
			if err := b.readInto(prev, data[:srcLo-chunkLo], chunkLo); err != nil {
				return fmt.Errorf("core: merge head of chunk %d: %w", idx, err)
			}
		}
		// Merge the tail [srcHi, chunkLo+len(data)) where it overlaps the
		// prior extent.
		tailEnd := minU64(chunkLo+uint64(len(data)), assign.PrevSizeBytes)
		if srcHi < tailEnd {
			if err := b.readInto(prev, data[srcHi-chunkLo:tailEnd-chunkLo], srcHi); err != nil {
				return fmt.Errorf("core: merge tail of chunk %d: %w", idx, err)
			}
		}
	}
	return nil
}

// putReplicas stores one chunk at every address in set, returning the
// providers that accepted it. When all replicas fail, placement is retried
// once with a fresh allocation before giving up.
func (b *Blob) putReplicas(key chunk.Key, data []byte, set []string) ([]string, error) {
	put := func(addrs []string) []string {
		okCh := make(chan string, len(addrs))
		var n int
		for _, addr := range addrs {
			n++
			go func(addr string) {
				start := time.Now()
				err := provider.PutChunk(b.c.rpc, addr, key, data)
				elapsed := time.Since(start)
				b.c.health.observe(addr, float64(elapsed.Microseconds())/1000, err != nil)
				b.c.chunkPuts.Add(1)
				if err == nil {
					b.c.chunkBytesOut.Add(int64(len(data)))
				}
				if obs := b.c.cfg.Observer; obs != nil {
					obs.ObserveChunkOp(addr, "put", len(data), elapsed, err)
				}
				if err != nil {
					okCh <- ""
					return
				}
				okCh <- addr
			}(addr)
		}
		var ok []string
		for i := 0; i < n; i++ {
			if a := <-okCh; a != "" {
				ok = append(ok, a)
			}
		}
		return ok
	}
	ok := put(set)
	if len(ok) > 0 {
		return ok, nil
	}
	// Every replica failed (e.g. the whole set crashed): one fresh try.
	fresh, err := b.c.allocate(1, b.replication)
	if err != nil {
		return nil, fmt.Errorf("core: chunk %s: all replicas failed and reallocation failed: %w", key, err)
	}
	ok = put(fresh[0])
	if len(ok) == 0 {
		return nil, fmt.Errorf("core: chunk %s: no provider accepted the chunk", key)
	}
	return ok, nil
}

// chunkSetMu guards the stored map shared by parallel uploads.
type chunkSetMu struct {
	mu sync.Mutex
}

func (m *chunkSetMu) set(dst map[uint64][]string, k uint64, v []string) {
	m.mu.Lock()
	dst[k] = v
	m.mu.Unlock()
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
