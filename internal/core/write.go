package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/chunk"
	"repro/internal/meta"
	"repro/internal/provider"
	"repro/internal/rpc"
	"repro/internal/vmanager"
)

// writeJob is one chunk to upload: its index and fully merged content.
type writeJob struct {
	idx  uint64
	data []byte
	// digest is the chunk's content digest, computed once per upload (after
	// any read-modify-write merge mutates data) and sent with every replica
	// put so providers can reject bytes that were damaged in transit.
	digest chunk.Digest
}

// Write stores p at byte offset off, producing and returning a new version.
// The write may extend the blob; ranges between the old end and off (for
// sparse writes) read back as zeros. Unaligned boundaries are supported
// via read-modify-write of the boundary chunks, which serializes against
// the immediately preceding version; chunk-aligned writes never wait for
// any other writer.
func (b *Blob) Write(p []byte, off uint64) (uint64, error) {
	return b.WriteCtx(context.Background(), p, off)
}

// WriteCtx is Write carrying the caller's context. With a tracer (or a
// trace already on the context) the whole write — uploads, assign,
// weave, metadata puts, commit — records as one span tree.
func (b *Blob) WriteCtx(ctx context.Context, p []byte, off uint64) (uint64, error) {
	ctx, op := b.c.cfg.Tracer.StartOp(ctx, "core.write")
	v, err := b.writeCtx(ctx, p, off)
	op.SetBytes(int64(len(p)))
	op.Finish(err)
	return v, err
}

func (b *Blob) writeCtx(ctx context.Context, p []byte, off uint64) (uint64, error) {
	if len(p) == 0 {
		return 0, errors.New("core: empty write")
	}
	cs := b.chunkSize
	end := off + uint64(len(p))
	startChunk, endChunk := off/cs, (end+cs-1)/cs
	writeID := nextWriteID()

	// Phase 1 (pre-assign, fully parallel with all other writers): upload
	// every chunk whose content is entirely determined by p. The jobs
	// slice p directly — aligned uploads are zero-copy all the way into
	// the batched request encoding.
	var full []writeJob
	for i := startChunk; i < endChunk; i++ {
		lo, hi := i*cs, (i+1)*cs
		if lo >= off && hi <= end {
			full = append(full, writeJob{idx: i, data: p[lo-off : hi-off]})
		}
	}
	stored := make(map[uint64][]string, endChunk-startChunk)
	if len(full) > 0 {
		sets, err := b.c.allocate(ctx, len(full), b.replication, nil)
		if err != nil {
			return 0, err
		}
		if err := b.uploadChunks(ctx, writeID, full, sets, stored); err != nil {
			return 0, err
		}
	}

	// Phase 2: obtain the version and the concurrency context.
	var assign vmanager.AssignResp
	err := b.c.vm.CallCtx(ctx, vmanager.MethodAssign,
		&vmanager.AssignReq{BlobID: b.id, Offset: off, Size: uint64(len(p)),
			WantLeaseTTLMs: wantLeaseTTLMs(uint64(len(p)))}, &assign)
	if err != nil {
		return 0, fmt.Errorf("core: assign: %w", mapVMError(err))
	}
	return b.finishWrite(ctx, p, off, writeID, &assign, stored)
}

// Append adds p at the end of the blob, returning the new version and the
// byte offset the data landed at. Concurrent appenders receive disjoint
// contiguous ranges from the version manager and proceed in parallel.
func (b *Blob) Append(p []byte) (version, off uint64, err error) {
	return b.AppendCtx(context.Background(), p)
}

// AppendCtx is Append carrying the caller's context (trace propagation;
// see WriteCtx).
func (b *Blob) AppendCtx(ctx context.Context, p []byte) (version, off uint64, err error) {
	ctx, op := b.c.cfg.Tracer.StartOp(ctx, "core.append")
	version, off, err = b.appendCtx(ctx, p)
	op.SetBytes(int64(len(p)))
	op.Finish(err)
	return version, off, err
}

func (b *Blob) appendCtx(ctx context.Context, p []byte) (version, off uint64, err error) {
	if len(p) == 0 {
		return 0, 0, errors.New("core: empty append")
	}
	var assign vmanager.AssignResp
	err = b.c.vm.CallCtx(ctx, vmanager.MethodAssign,
		&vmanager.AssignReq{BlobID: b.id, Size: uint64(len(p)), Append: true,
			WantLeaseTTLMs: wantLeaseTTLMs(uint64(len(p)))}, &assign)
	if err != nil {
		return 0, 0, fmt.Errorf("core: assign append: %w", mapVMError(err))
	}
	writeID := nextWriteID()
	v, err := b.finishWrite(ctx, p, assign.Offset, writeID, &assign, map[uint64][]string{})
	if err != nil {
		return 0, 0, err
	}
	return v, assign.Offset, nil
}

// finishWrite completes a write after version assignment: upload any
// not-yet-stored chunks (including boundary chunks needing merge), weave
// the metadata tree, and commit. stored maps chunk index -> replica set
// for chunks already uploaded in phase 1. On unrecoverable failure the
// version is abort-repaired so publication never wedges and the version
// chain stays fully readable.
func (b *Blob) finishWrite(ctx context.Context, p []byte, off, writeID uint64, assign *vmanager.AssignResp, stored map[uint64][]string) (uint64, error) {
	stopRenewal := b.startLeaseRenewal(assign)
	v, err := b.finishWriteInner(ctx, p, off, writeID, assign, stored)
	stopRenewal()
	if err != nil {
		if errors.Is(err, ErrLeaseExpired) {
			// The version manager already aborted this version and owns its
			// identity weave (expiry loop or GC sweep); repairing it again
			// here would only duplicate that work.
			return 0, err
		}
		b.abortRepair(assign)
		return 0, err
	}
	return v, nil
}

// wantLeaseTTLMs sizes the lease a write asks for at Assign to the bytes
// it is about to move: a bulk upload that would outlive the deployment's
// base TTL negotiates a longer one up front instead of leaning entirely on
// renewal heartbeats (which a long GC pause or a brief partition can drop
// just long enough to lose the lease). The estimate assumes a deliberately
// pessimistic 4 MB/s of sustained upload throughput; small writes ask for
// nothing and take the server's default, so the common path — and every
// existing test — is unchanged. The version manager clamps the request to
// its own policy ceiling, so a huge write cannot pin a version forever.
func wantLeaseTTLMs(sizeBytes uint64) uint64 {
	const bytesPerMs = 4 << 20 / 1000 // 4 MB/s floor
	if sizeBytes < 4<<20 {
		return 0
	}
	return sizeBytes / bytesPerMs
}

// startLeaseRenewal heartbeats the write lease granted at Assign so a
// slow-but-alive writer (large upload, boundary merge waiting on its
// predecessor) is not mistaken for a dead one. No-op when leases are
// disabled. The returned stop function is idempotent and waits for the
// heartbeat goroutine to exit, so no renewal races the commit/abort that
// follows it.
func (b *Blob) startLeaseRenewal(assign *vmanager.AssignResp) func() {
	if assign.LeaseTTLMs == 0 {
		return func() {}
	}
	// A third of the TTL survives two consecutive lost heartbeats.
	interval := time.Duration(assign.LeaseTTLMs) * time.Millisecond / 3
	if interval <= 0 {
		interval = time.Millisecond
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				err := b.c.vm.Call(vmanager.MethodRenewLease,
					&vmanager.VersionRef{BlobID: b.id, Version: assign.Version}, &vmanager.Ack{})
				var remote *rpc.RemoteError
				if errors.As(err, &remote) {
					// Definitive refusal: lease already expired, version
					// finished, or blob deleted. The write's own commit (or
					// abort) surfaces the outcome; renewing is pointless.
					return
				}
				// Transport errors and timeouts: keep trying — the manager
				// may come back before the lease lapses, and a dropped
				// renewal must not silently give up the lease early.
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(stop)
			<-done
		})
	}
}

// abortRepair handles a failed write: it weaves an *identity* metadata
// tree for the assigned version via meta.WeaveIdentity — the same engine
// the version manager's lease expiry loop and the GC sweeper run — then
// marks the version aborted at the version manager, reporting whether the
// weave landed. An abort reported unwoven becomes server-side debt: the
// GC sweep lists it via vm.unwoven and repairs it, so the repair no longer
// depends on the only client that noticed the failure staying alive.
func (b *Blob) abortRepair(assign *vmanager.AssignResp) {
	// Publication must advance even if the repair itself fails, so the
	// abort is sent regardless (deferred) — a DROPPED abort wedges the
	// blob's publish frontier until the version's lease lapses (or, with
	// leases disabled, until the version manager next restarts), so a
	// first failed attempt hands off to a bounded background retry loop
	// rather than giving up — or stalling the failing Write for the
	// retries' duration. How hard the loop tries depends on WHY the abort
	// failed:
	//   - call timeout: the manager is alive but drowning (e.g. a retry
	//     storm) — the abort WILL land once the queue drains, and giving
	//     up instead is what wedges the blob, so keep retrying up to a
	//     generous deadline;
	//   - transport failure: the manager is down — its restart recovery
	//     aborts every in-flight write anyway, so a few quick retries
	//     (it may be mid-revival) are enough.
	woven := false
	abort := func() error {
		return b.c.vm.Call(vmanager.MethodAbort,
			&vmanager.AbortReq{BlobID: b.id, Version: assign.Version, Woven: woven}, &vmanager.Ack{})
	}
	defer func() {
		err := abort()
		var remote *rpc.RemoteError
		if err == nil || errors.As(err, &remote) {
			return // acked, or definitively refused (e.g. already finished)
		}
		go func() {
			deadline := time.Now().Add(60 * time.Second)
			backoff := 50 * time.Millisecond
			fastFails := 0
			if !errors.Is(err, rpc.ErrTimeout) {
				fastFails++
			}
			for {
				time.Sleep(backoff)
				if backoff < 2*time.Second {
					backoff *= 2
				}
				err := abort()
				var remote *rpc.RemoteError
				if err == nil || errors.As(err, &remote) {
					return
				}
				if !errors.Is(err, rpc.ErrTimeout) {
					if fastFails++; fastFails >= 3 {
						return
					}
				}
				if time.Now().After(deadline) {
					return
				}
			}
		}()
	}()
	prev := assign.Version - 1
	// Repair reads the previous snapshot, so it serializes behind it; this
	// is a failure path, not the fast path. Once prev has published, every
	// version below ours has finished — exactly WeaveIdentity's
	// precondition — so the identity tree can reference the newest live
	// predecessor directly instead of the assign-time in-flight set, any
	// member of which may itself have aborted treeless by now (the
	// dangling-descriptor hazard the shared engine avoids).
	if prev > 0 {
		if err := b.WaitPublished(prev); err != nil {
			return
		}
	}
	in := meta.IdentityInput{
		Blob:       b.id,
		Version:    assign.Version,
		StartChunk: assign.StartChunk,
		EndChunk:   assign.EndChunk,
		SizeChunks: assign.SizeChunks,
	}
	if prev > 0 {
		// Source leaves come from the newest NON-FAILED predecessor (failed
		// versions contributed no content and may lack trees; see
		// mergePrior). src == 0 means every predecessor failed: all-zero
		// leaves are the true content.
		src, vi, err := b.newestLiveVersion(context.Background(), prev)
		if err != nil {
			return
		}
		if src > 0 {
			in.SrcVersion, in.SrcSizeChunks = src, vi.SizeChunks
		}
	}
	if meta.WeaveIdentity(b.c.meta, in) == nil {
		woven = true
	}
}

func (b *Blob) finishWriteInner(ctx context.Context, p []byte, off, writeID uint64, assign *vmanager.AssignResp, stored map[uint64][]string) (uint64, error) {
	cs := b.chunkSize
	end := off + uint64(len(p))

	// Upload every chunk not handled in phase 1. Chunks fully covered by p
	// (the append path lands here with everything still pending) are
	// zero-copy slices of p; only boundary chunks — whose prior bytes may
	// need a read-modify-write against version assign.Version-1 —
	// allocate a merge buffer.
	var jobs []writeJob
	var rmwNeeded bool
	for i := assign.StartChunk; i < assign.EndChunk; i++ {
		if _, ok := stored[i]; ok {
			continue
		}
		chunkLo := i * cs
		length := assign.SizeBytes - chunkLo
		if length > cs {
			length = cs
		}
		srcLo, srcHi := maxU64(chunkLo, off), minU64(chunkLo+cs, end)
		if srcLo == chunkLo && srcHi == chunkLo+length {
			// Entirely determined by p: ship the caller's bytes directly.
			jobs = append(jobs, writeJob{idx: i, data: p[srcLo-off : srcHi-off]})
			continue
		}
		data := make([]byte, length)
		// Bytes from p.
		copy(data[srcLo-chunkLo:], p[srcLo-off:srcHi-off])
		// Prior bytes (before and/or after the written range) that fall
		// inside the previous version's extent must be merged.
		if chunkLo < assign.PrevSizeBytes && (srcLo > chunkLo || (srcHi < chunkLo+length && srcHi < assign.PrevSizeBytes)) {
			rmwNeeded = true
		}
		jobs = append(jobs, writeJob{idx: i, data: data})
	}

	if rmwNeeded {
		if err := b.mergePrior(ctx, jobs, off, end, assign); err != nil {
			return 0, err
		}
	}

	if len(jobs) > 0 {
		sets, err := b.c.allocate(ctx, len(jobs), b.replication, nil)
		if err != nil {
			return 0, err
		}
		if err := b.uploadChunks(ctx, writeID, jobs, sets, stored); err != nil {
			return 0, err
		}
	}

	// Weave and store the metadata tree.
	leaves := make([]meta.ChunkRef, assign.EndChunk-assign.StartChunk)
	for i := assign.StartChunk; i < assign.EndChunk; i++ {
		length := assign.SizeBytes - i*cs
		if length > cs {
			length = cs
		}
		leaves[i-assign.StartChunk] = meta.ChunkRef{
			Providers: stored[i],
			Key:       chunk.Key{Blob: b.id, Version: writeID, Index: i},
			Length:    uint32(length),
		}
	}
	nodes, _, err := meta.WeaveCtx(ctx, b.c.meta, meta.WeaveInput{
		Blob:          b.id,
		Version:       assign.Version,
		StartChunk:    assign.StartChunk,
		EndChunk:      assign.EndChunk,
		SizeChunks:    assign.SizeChunks,
		Leaves:        leaves,
		InFlight:      assign.InFlight,
		PubVersion:    assign.PubVersion,
		PubSizeChunks: assign.PubSizeChunks,
	})
	if err != nil {
		return 0, fmt.Errorf("core: weaving metadata for v%d: %w", assign.Version, err)
	}
	if err := b.c.meta.PutNodesCtx(ctx, nodes); err != nil {
		return 0, fmt.Errorf("core: storing metadata for v%d: %w", assign.Version, err)
	}

	// Commit: the version manager publishes in order.
	err = b.c.vm.CallCtx(ctx, vmanager.MethodCommit,
		&vmanager.VersionRef{BlobID: b.id, Version: assign.Version}, &vmanager.Ack{})
	if err != nil {
		return 0, fmt.Errorf("core: commit v%d: %w", assign.Version, mapVMError(err))
	}
	return assign.Version, nil
}

// mergePrior overlays the previous version's bytes into the boundary
// chunks of an unaligned write. It waits for version-1 to publish — the
// one case where a writer serializes behind its predecessor — and reads
// the prior content of every affected chunk.
func (b *Blob) mergePrior(ctx context.Context, jobs []writeJob, off, end uint64, assign *vmanager.AssignResp) error {
	prev := assign.Version - 1
	if prev == 0 {
		return nil // nothing real to merge with; zeros are already in place
	}
	if err := b.waitPublishedCtx(ctx, prev); err != nil {
		return fmt.Errorf("core: waiting for v%d before merge: %w", prev, err)
	}
	// Failed predecessors contributed no content, so "content as of prev"
	// is the newest NON-FAILED version at or below prev. Abort repair
	// usually leaves failed versions with readable identity metadata, but
	// a repair can itself die with the control plane mid-crash; never
	// reading THROUGH a failed version keeps one unrepaired abort from
	// poisoning every later merge of the blob.
	var src, prior uint64
	if prev == assign.PubVersion {
		// Sequential writer: Assign already certified prev as the newest
		// non-failed published version, and with nothing assigned between
		// it and us, PrevSizeBytes is exactly its extent — no RPC needed.
		src, prior = prev, assign.PrevSizeBytes
	} else {
		s, srcInfo, err := b.newestLiveVersion(ctx, prev)
		if err != nil {
			return fmt.Errorf("core: resolving merge source below v%d: %w", prev, err)
		}
		if s == 0 {
			return nil // every predecessor aborted: zeros are the true content
		}
		// Bytes beyond the source's extent are zeros (either never
		// written, or written only by failed versions); the merge buffers
		// start zeroed.
		src, prior = s, minU64(assign.PrevSizeBytes, srcInfo.SizeBytes)
	}
	cs := b.chunkSize
	for j := range jobs {
		idx, data := jobs[j].idx, jobs[j].data
		chunkLo := idx * cs
		if chunkLo >= prior {
			continue
		}
		srcLo, srcHi := maxU64(chunkLo, off), minU64(chunkLo+cs, end)
		// Merge the head [chunkLo, srcLo) where it overlaps the prior
		// extent.
		if headEnd := minU64(srcLo, prior); headEnd > chunkLo {
			if err := b.readInto(ctx, src, data[:headEnd-chunkLo], chunkLo); err != nil {
				return fmt.Errorf("core: merge head of chunk %d: %w", idx, err)
			}
		}
		// Merge the tail [srcHi, chunkLo+len(data)) where it overlaps the
		// prior extent.
		tailEnd := minU64(chunkLo+uint64(len(data)), prior)
		if srcHi < tailEnd {
			if err := b.readInto(ctx, src, data[srcHi-chunkLo:tailEnd-chunkLo], srcHi); err != nil {
				return fmt.Errorf("core: merge tail of chunk %d: %w", idx, err)
			}
		}
	}
	return nil
}

// newestLiveVersion walks down from v to the newest non-failed version,
// returning (0, nil, nil) when every version at or below v failed. Used
// by the merge and repair paths, which need prior CONTENT: failed
// versions have none, and possibly no readable tree either.
func (b *Blob) newestLiveVersion(ctx context.Context, v uint64) (uint64, *vmanager.VersionInfoResp, error) {
	for ; v > 0; v-- {
		vi, err := b.versionInfoCtx(ctx, v)
		if err != nil {
			return 0, nil, err
		}
		if !vi.Failed {
			return v, vi, nil
		}
	}
	return 0, nil, nil
}

// uploadChunks stores jobs[i] at replica set sets[i], recording each
// chunk's accepted providers into stored. RPCs are batched per provider:
// every chunk destined for the same address — across all jobs and replica
// ranks — travels in one provider.putchunks, so a W-chunk upload against
// M providers costs at most min(W×R, M-ish) round trips instead of W×R
// (the write-plane mirror of PutNodes's per-provider grouping).
//
// The durability contract is per chunk, unchanged from the singleton-put
// days: a chunk succeeds when at least one replica accepted it. Per-chunk
// errors inside a batch are isolated by the putchunks reply, and chunks
// that lose EVERY replica (e.g. their whole set crashed) get one fresh
// placement — excluding the providers that just failed them — before the
// write gives up.
func (b *Blob) uploadChunks(ctx context.Context, writeID uint64, jobs []writeJob, sets [][]string, stored map[uint64][]string) error {
	if len(jobs) == 0 {
		return nil
	}
	accepted := make([][]string, len(jobs))
	failedAt := make([][]string, len(jobs))
	// Digest once per chunk, not once per replica put: the same checksum
	// rides every copy (and any retry) of the chunk.
	for i := range jobs {
		jobs[i].digest = chunk.DigestOf(jobs[i].data)
	}
	var resMu sync.Mutex
	b.putGrouped(ctx, writeID, jobs, sets, accepted, failedAt, &resMu)

	// Collect chunks that lost every replica and the providers that
	// failed them (threaded into the retry allocation as an exclusion
	// set, so the fresh placement cannot re-select them).
	var retry []int
	var exclude []string
	seen := make(map[string]bool)
	for i := range jobs {
		if len(accepted[i]) > 0 {
			continue
		}
		retry = append(retry, i)
		for _, a := range failedAt[i] {
			if !seen[a] {
				seen[a] = true
				exclude = append(exclude, a)
			}
		}
	}
	if len(retry) > 0 {
		// The retry placement also steers clear of providers above the
		// fullness watermark: the first failure may well have been
		// capacity-related, and landing the retried chunks on near-full
		// disks would hand the repair plane immediate migration work. Best
		// effort — if the report is unavailable the plain exclusion set
		// stands, and the allocator's starvation safety (an exclusion that
		// would empty the pool is ignored) still applies.
		for _, addr := range b.c.fullProviders(ctx, b.c.cfg.FullnessWatermark) {
			if !seen[addr] {
				seen[addr] = true
				exclude = append(exclude, addr)
			}
		}
		key0 := chunk.Key{Blob: b.id, Version: writeID, Index: jobs[retry[0]].idx}
		fresh, err := b.c.allocate(ctx, len(retry), b.replication, exclude)
		if err != nil {
			return fmt.Errorf("core: chunk %s: all replicas failed and reallocation failed: %w", key0, err)
		}
		retryJobs := make([]writeJob, len(retry))
		for j, i := range retry {
			retryJobs[j] = jobs[i]
		}
		retryAccepted := make([][]string, len(retry))
		retryFailed := make([][]string, len(retry))
		b.putGrouped(ctx, writeID, retryJobs, fresh, retryAccepted, retryFailed, &resMu)
		for j, i := range retry {
			accepted[i] = retryAccepted[j]
			if len(accepted[i]) == 0 {
				return fmt.Errorf("core: chunk %s: no provider accepted the chunk",
					chunk.Key{Blob: b.id, Version: writeID, Index: jobs[i].idx})
			}
		}
	}
	for i := range jobs {
		stored[jobs[i].idx] = accepted[i]
	}
	return nil
}

// putBatchBytes bounds one putchunks request's payload. It keeps batches
// comfortably under the transport's frame limit (256 MiB over TCP) while
// still amortizing per-RPC costs across many chunks; a huge write simply
// costs a few RPCs per provider instead of one.
const putBatchBytes = 32 << 20

// putGrouped issues one provider.putchunks per destination address (all
// batches in parallel, bounded by the client's I/O semaphore; an address
// whose payload exceeds putBatchBytes gets several) and sorts each
// chunk's outcome into accepted[i] / failedAt[i]. A transport-level RPC
// failure fails every chunk of that batch at that address; per-chunk
// rejections from a responding provider fail only their own chunk.
func (b *Blob) putGrouped(ctx context.Context, writeID uint64, jobs []writeJob, sets [][]string, accepted, failedAt [][]string, resMu *sync.Mutex) {
	groups := make(map[string][]int)
	for i, set := range sets {
		for _, addr := range set {
			groups[addr] = append(groups[addr], i)
		}
	}
	// Deterministic order keeps retries and tests reproducible.
	addrs := make([]string, 0, len(groups))
	for a := range groups {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	type putBatch struct {
		addr string
		idxs []int
	}
	var batches []putBatch
	for _, addr := range addrs {
		cur := putBatch{addr: addr}
		payload := 0
		for _, i := range groups[addr] {
			if len(cur.idxs) > 0 && payload+len(jobs[i].data) > putBatchBytes {
				batches = append(batches, cur)
				cur = putBatch{addr: addr}
				payload = 0
			}
			cur.idxs = append(cur.idxs, i)
			payload += len(jobs[i].data)
		}
		batches = append(batches, cur)
	}
	// Group failures are per-chunk outcomes, not call failures, so the
	// parallel runner never sees an error and every batch always runs.
	_ = b.c.parallel(len(batches), func(gi int) error {
		addr, idxs := batches[gi].addr, batches[gi].idxs
		items := make([]provider.PutItem, len(idxs))
		for j, i := range idxs {
			items[j] = provider.PutItem{
				Key:    chunk.Key{Blob: b.id, Version: writeID, Index: jobs[i].idx},
				Data:   jobs[i].data,
				Digest: jobs[i].digest,
			}
		}
		start := time.Now()
		errs, rpcErr := provider.PutChunksCtx(ctx, b.c.rpc, addr, items)
		elapsed := time.Since(start)
		b.c.chunkPutBatches.Add(1)
		b.c.chunkPuts.Add(int64(len(items)))
		chunkErrs := make([]error, len(idxs))
		resMu.Lock()
		for j, i := range idxs {
			chunkErr := rpcErr
			if chunkErr == nil {
				chunkErr = errs[j]
			}
			chunkErrs[j] = chunkErr
			if chunkErr != nil {
				failedAt[i] = append(failedAt[i], addr)
				continue
			}
			b.c.chunkBytesOut.Add(int64(len(items[j].Data)))
			accepted[i] = append(accepted[i], addr)
		}
		resMu.Unlock()
		// Health and observer samples stay per CHUNK, with the batch's
		// duration amortized across its items: a provider that rejects one
		// chunk of a 64-chunk batch (e.g. a tombstoned blob) is penalized
		// for one sample and credited for 63, just as 64 singleton puts
		// scored it, and per-op latency aggregates stay comparable to the
		// singleton era instead of multiplying the batch time by its size.
		perChunk := elapsed / time.Duration(len(items))
		perChunkMs := float64(perChunk.Microseconds()) / 1000
		obs := b.c.cfg.Observer
		for j := range items {
			b.c.health.observe(addr, perChunkMs, chunkErrs[j] != nil)
			if obs != nil {
				obs.ObserveChunkOp(addr, "put", len(items[j].Data), perChunk, chunkErrs[j])
			}
		}
		return nil
	})
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
