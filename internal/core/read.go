package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"slices"
	"time"

	"repro/internal/meta"
	"repro/internal/provider"
	"repro/internal/trace"
)

// Read fills p with the blob's content starting at byte offset off, taken
// from the given published version (0 = latest published). It returns the
// number of bytes read; like io.ReaderAt it returns io.EOF when fewer than
// len(p) bytes were available.
//
// Reads never synchronize with writers: the snapshot named by version is
// immutable, so the descent and the chunk fetches need no locks anywhere
// in the system (§I-B3 read/write concurrency).
func (b *Blob) Read(version uint64, p []byte, off uint64) (int, error) {
	return b.ReadCtx(context.Background(), version, p, off)
}

// ReadCtx is Read carrying the caller's context. When the client has a
// tracer (or the context already carries a trace), the whole read — the
// version resolve, every metadata descent round, every chunk fetch —
// records as one span tree under one trace id.
func (b *Blob) ReadCtx(ctx context.Context, version uint64, p []byte, off uint64) (int, error) {
	ctx, op := b.c.cfg.Tracer.StartOp(ctx, "core.read")
	n, err := b.readCtx(ctx, version, p, off)
	op.SetBytes(int64(n))
	finishIgnoringEOF(op, err)
	return n, err
}

func (b *Blob) readCtx(ctx context.Context, version uint64, p []byte, off uint64) (int, error) {
	version, sizeBytes, sizeChunks, err := b.resolveVersion(ctx, version)
	if err != nil {
		return 0, err
	}
	if len(p) == 0 {
		return 0, nil
	}
	if off >= sizeBytes {
		return 0, io.EOF
	}
	end := off + uint64(len(p))
	if end > sizeBytes {
		end = sizeBytes
	}
	if err := b.readRange(ctx, version, sizeChunks, p[:end-off], off); err != nil {
		// The version was readable when resolved, but a concurrent prune
		// may have reclaimed its tree or chunks mid-descent. Re-check so
		// racing readers get the clean typed error, never a confusing
		// not-found, and never silently torn data (the read fails whole).
		if vi, infoErr := b.versionInfoCtx(ctx, version); infoErr == nil && vi.Reclaimed {
			return 0, fmt.Errorf("%w: blob %d version %d", ErrVersionReclaimed, b.id, version)
		} else if infoErr != nil && errors.Is(infoErr, ErrBlobDeleted) {
			return 0, infoErr
		}
		return 0, err
	}
	n := int(end - off)
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// readInto is Read without clamping diagnostics, used internally by the
// read-modify-write merge; the caller guarantees the range is in bounds.
// Unlike Read it accepts aborted versions: abort repair gives them valid
// identity metadata, and the merge needs "content as of v-1" regardless of
// whether v-1's own write succeeded.
func (b *Blob) readInto(ctx context.Context, version uint64, p []byte, off uint64) error {
	vi, err := b.versionInfoCtx(ctx, version)
	if err != nil {
		return err
	}
	if !vi.Published {
		return fmt.Errorf("%w: blob %d version %d", ErrNotPublished, b.id, version)
	}
	return b.readRange(ctx, version, vi.SizeChunks, p, off)
}

// resolveVersion maps version 0 to the latest published version and
// validates that an explicit version is published and not aborted.
func (b *Blob) resolveVersion(ctx context.Context, version uint64) (v, sizeBytes, sizeChunks uint64, err error) {
	if version == 0 {
		var lv, size uint64
		lv, size, err = b.latestCtx(ctx)
		if err != nil {
			return 0, 0, 0, err
		}
		if lv == 0 {
			return 0, 0, 0, nil // empty blob: reads see size 0
		}
		cs := b.chunkSize
		return lv, size, (size + cs - 1) / cs, nil
	}
	vi, err := b.versionInfoCtx(ctx, version)
	if err != nil {
		return 0, 0, 0, err
	}
	if vi.Reclaimed {
		return 0, 0, 0, fmt.Errorf("%w: blob %d version %d", ErrVersionReclaimed, b.id, version)
	}
	if !vi.Published {
		return 0, 0, 0, fmt.Errorf("%w: blob %d version %d", ErrNotPublished, b.id, version)
	}
	if vi.Failed {
		return 0, 0, 0, fmt.Errorf("%w: blob %d version %d", ErrFailedVersion, b.id, version)
	}
	return version, vi.SizeBytes, vi.SizeChunks, nil
}

// readRange fetches [off, off+len(p)) of a published version into p.
func (b *Blob) readRange(ctx context.Context, version, sizeChunks uint64, p []byte, off uint64) error {
	cs := b.chunkSize
	end := off + uint64(len(p))
	a, z := off/cs, (end+cs-1)/cs
	refs, leafKeys, err := meta.CollectLeavesWithKeysCtx(ctx, b.c.meta, b.id, version, sizeChunks, a, z)
	if err != nil {
		return fmt.Errorf("core: metadata for read of blob %d v%d: %w", b.id, version, err)
	}
	return b.c.parallel(len(refs), func(i int) error {
		idx := a + uint64(i)
		chunkLo := idx * cs
		lo, hi := maxU64(chunkLo, off), minU64(chunkLo+cs, end)
		dst := p[lo-off : hi-off]
		ref := refs[i]
		if ref.IsZero() {
			zero(dst)
			return nil
		}
		// Only [inLo, validHi) of the chunk holds stored bytes for this
		// read; everything past the chunk's valid length reads as zeros
		// (sparse regions within a partially written chunk). Fetch only
		// the valid sub-range — a boundary read moves just the bytes it
		// needs — then copy it and zero-fill the tail.
		inLo := lo - chunkLo
		validHi := minU64(hi-chunkLo, uint64(ref.Length))
		if validHi <= inLo {
			zero(dst)
			return nil
		}
		data, err := b.fetchChunkRange(ctx, ref, inLo, validHi-inLo)
		if err != nil {
			// Every replica in the descriptor failed. The one way that
			// happens with data still intact is a stale descriptor: the
			// repair engine re-homed the chunk (dead provider, rebalance
			// migration) and patched the leaf, but this client's cache —
			// immutable-node caching never invalidates — still serves the
			// pre-patch replica list. Refresh the leaf from the ring and
			// retry once with the patched provider order.
			fresh, refErr := b.c.meta.RefreshNodeCtx(ctx, leafKeys[i])
			if refErr != nil || !fresh.Leaf || fresh.Chunk.IsZero() ||
				slices.Equal(fresh.Chunk.Providers, ref.Providers) {
				return err
			}
			data, err = b.fetchChunkRange(ctx, fresh.Chunk, inLo, validHi-inLo)
			if err != nil {
				return err
			}
		}
		n := copy(dst, data)
		zero(dst[n:])
		return nil
	})
}

// fetchChunkRange retrieves bytes [off, off+length) of one chunk, trying
// replicas healthiest-first (the client-side QoS feedback of §IV-E: a
// degraded provider stops being the first choice after a few slow
// operations) and failing over on error. A full-chunk read is requested
// as the whole chunk (zero range) so providers keep serving it from — and
// admitting it into — their RAM cache.
func (b *Blob) fetchChunkRange(ctx context.Context, ref meta.ChunkRef, off, length uint64) ([]byte, error) {
	if off == 0 && length >= uint64(ref.Length) {
		off, length = 0, 0 // whole chunk
	}
	ordered := b.c.health.order(ref.Providers)
	var lastErr error
	for _, addr := range ordered {
		start := time.Now()
		data, err := provider.GetChunkRangeCtx(ctx, b.c.rpc, addr, ref.Key, off, length)
		elapsed := time.Since(start)
		b.c.health.observe(addr, float64(elapsed.Microseconds())/1000, err != nil)
		b.c.chunkGets.Add(1)
		if obs := b.c.cfg.Observer; obs != nil {
			obs.ObserveChunkOp(addr, "get", len(data), elapsed, err)
		}
		if err == nil {
			b.c.chunkBytesIn.Add(int64(len(data)))
			return data, nil
		}
		if provider.IsCorrupt(err) {
			// The replica's bytes failed the end-to-end digest check (the
			// provider has been told to recheck its copy); the next replica
			// gets the read.
			b.c.chunkCorrupt.Add(1)
		}
		lastErr = err
	}
	return nil, fmt.Errorf("core: chunk %s unavailable on all %d replicas: %w",
		ref.Key, len(ref.Providers), lastErr)
}

func zero(p []byte) {
	for i := range p {
		p[i] = 0
	}
}

// finishIgnoringEOF finishes an operation span without counting io.EOF
// as a failure: a short read reporting EOF moved real bytes and is a
// successful operation, not something the flight recorder should flag
// as errored.
func finishIgnoringEOF(op *trace.Active, err error) {
	if errors.Is(err, io.EOF) {
		err = nil
	}
	op.Finish(err)
}

// ChunkLocation reports where one chunk-aligned slice of a version lives;
// the locality information BSFS exposes to MapReduce schedulers (§IV-D).
type ChunkLocation struct {
	Offset    uint64 // byte offset within the blob
	Length    uint64 // valid bytes in this chunk
	Providers []string
}

// Locations returns the chunk locations overlapping [off, off+length) of
// the given version (0 = latest).
func (b *Blob) Locations(version, off, length uint64) ([]ChunkLocation, error) {
	version, sizeBytes, sizeChunks, err := b.resolveVersion(context.Background(), version)
	if err != nil {
		return nil, err
	}
	if version == 0 || off >= sizeBytes || length == 0 {
		return nil, nil
	}
	end := off + length
	if end > sizeBytes {
		end = sizeBytes
	}
	cs := b.chunkSize
	a, z := off/cs, (end+cs-1)/cs
	refs, err := meta.CollectLeaves(b.c.meta, b.id, version, sizeChunks, a, z)
	if err != nil {
		return nil, err
	}
	out := make([]ChunkLocation, len(refs))
	for i, ref := range refs {
		out[i] = ChunkLocation{
			Offset:    (a + uint64(i)) * cs,
			Length:    uint64(ref.Length),
			Providers: ref.Providers,
		}
	}
	return out, nil
}
