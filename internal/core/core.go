// Package core implements the BlobSeer client library: the versioning
// access interface of §I-B1. A client manipulates a blob through CreateBlob
// / OpenBlob and then Read / Write / Append. Every Write or Append
// generates a new snapshot version — only the difference is physically
// stored — and Read can address any published version.
//
// Protocol (matching the paper's ordering):
//
//	Write:  upload chunks to data providers (placement from the provider
//	        manager) → Assign at the version manager → weave + store
//	        metadata tree nodes → Commit.
//	Append: Assign first (the offset is only known then), then as Write.
//	Read:   resolve version at the version manager → descend the metadata
//	        tree → fetch chunks from data providers in parallel.
//
// Writers never read other writers' unpublished state; readers never
// block on writers. The version manager is the only serialization point.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/meta"
	"repro/internal/metrics"
	"repro/internal/pmanager"
	"repro/internal/rpc"
	"repro/internal/trace"
	"repro/internal/vmanager"
)

// Errors reported by the client library.
var (
	ErrNotPublished  = errors.New("core: version not yet published")
	ErrFailedVersion = errors.New("core: version was aborted by its writer")
	ErrDegradedWrite = errors.New("core: chunk stored with fewer replicas than requested")
	// ErrLeaseExpired marks a write whose lease lapsed before Commit: the
	// version manager aborted (and wove away) the version, so nothing was
	// published and the write must be retried from scratch.
	ErrLeaseExpired = errors.New("core: write lease expired before commit")
)

// Observer receives a callback for every chunk transfer the client
// performs. The GloBeM monitoring pipeline (§IV-E) plugs in here.
type Observer interface {
	// ObserveChunkOp reports one chunk PUT/GET against one provider.
	ObserveChunkOp(provider, op string, bytes int, dur time.Duration, err error)
}

// Config wires a client to a deployment.
type Config struct {
	// Network is the transport everything runs over.
	Network rpc.Network
	// ClientName, when set, attributes this client's traffic to a named
	// simulated machine (one NIC per client on the fabric).
	ClientName string
	// VMAddr and PMAddr locate the version manager and provider manager.
	VMAddr string
	PMAddr string
	// VMAddrs lists every member of a replicated version-manager group
	// (leader plus standbys, any order). When set it supersedes VMAddr:
	// the client follows leadership redirects and rides out failovers by
	// re-resolving the leader with vm.whoisleader. Single-node deployments
	// leave it empty and keep the zero-overhead VMAddr path.
	VMAddrs []string
	// MetaProviders lists the metadata DHT members.
	MetaProviders []string
	// MetaReplication is the metadata replica count (default 1).
	MetaReplication int
	// MetaCacheNodes enables the client-side metadata cache when > 0.
	MetaCacheNodes int
	// CallTimeout bounds each RPC (default 30s).
	CallTimeout time.Duration
	// ParallelIO bounds concurrent chunk transfers per operation
	// (default 16).
	ParallelIO int
	// FullnessWatermark is the provider fullness (used/capacity) above
	// which retried chunk placements exclude a provider (default 0.85).
	// Deployments tune it together with the repair engine's HighWater so
	// the write plane stops targeting disks the rebalancer is draining.
	// Must be in (0, 1]; zero means "use the default".
	FullnessWatermark float64
	// Observer, when set, sees every chunk transfer.
	Observer Observer
	// Tracer, when set, records a span per client operation (core.read /
	// core.write / core.append) and propagates the trace context through
	// every RPC the operation issues, so sampled operations reconstruct
	// as cross-role waterfalls. Nil disables client-side tracing (RPCs
	// still join traces handed in via the *Ctx entry points' context).
	Tracer *trace.Tracer
}

// Client talks to one BlobSeer deployment. It is safe for concurrent use;
// typical experiments run many goroutines over one Client or many Clients
// over one network.
type Client struct {
	cfg    Config
	rpc    *rpc.Client
	vm     *vmanager.Caller
	meta   *meta.Client
	sem    chan struct{}
	health *providerHealth

	// Data-plane accounting: chunk RPCs issued and payload bytes moved.
	// Together with meta.Client.RPCStats these make the cost model of a
	// read/write observable (and testable) instead of inferred.
	chunkGets       metrics.Counter
	chunkPuts       metrics.Counter
	chunkPutBatches metrics.Counter
	chunkBytesIn    metrics.Counter
	chunkBytesOut   metrics.Counter
	chunkCorrupt    metrics.Counter
}

// IOStats is a snapshot of the client's data-plane traffic.
type IOStats struct {
	ChunkGetRPCs int64 // provider.get calls (including failed replicas)
	// ChunkPutOps counts per-chunk-per-replica store operations
	// (including failed ones); ChunkPutRPCs counts the provider.putchunks
	// round trips that carried them. Ops/RPCs is the write-plane
	// coalescing factor: a W-chunk write at replication R is W×R ops in
	// at most ~providers RPCs.
	ChunkPutOps   int64
	ChunkPutRPCs  int64
	ChunkBytesIn  int64 // payload bytes received from providers
	ChunkBytesOut int64 // payload bytes sent to providers
	// ChunkCorruptReads counts replica reads rejected by the end-to-end
	// digest check (each one failed over to another replica).
	ChunkCorruptReads int64
}

// IOStats reports cumulative chunk-transfer counts for this client.
func (c *Client) IOStats() IOStats {
	return IOStats{
		ChunkGetRPCs:      c.chunkGets.Load(),
		ChunkPutOps:       c.chunkPuts.Load(),
		ChunkPutRPCs:      c.chunkPutBatches.Load(),
		ChunkBytesIn:      c.chunkBytesIn.Load(),
		ChunkBytesOut:     c.chunkBytesOut.Load(),
		ChunkCorruptReads: c.chunkCorrupt.Load(),
	}
}

// MetaRPCStats reports cumulative metadata-plane RPC counts for this
// client.
func (c *Client) MetaRPCStats() meta.RPCStats { return c.meta.RPCStats() }

// NewClient validates cfg and builds a client.
func NewClient(cfg Config) (*Client, error) {
	if cfg.Network == nil {
		return nil, errors.New("core: Config.Network is required")
	}
	if (cfg.VMAddr == "" && len(cfg.VMAddrs) == 0) || cfg.PMAddr == "" {
		return nil, errors.New("core: version manager and provider manager addresses are required")
	}
	if len(cfg.MetaProviders) == 0 {
		return nil, errors.New("core: at least one metadata provider is required")
	}
	if cfg.MetaReplication < 1 {
		cfg.MetaReplication = 1
	}
	if cfg.ParallelIO <= 0 {
		cfg.ParallelIO = 16
	}
	if cfg.FullnessWatermark == 0 {
		cfg.FullnessWatermark = defaultFullnessWatermark
	}
	if cfg.FullnessWatermark < 0 || cfg.FullnessWatermark > 1 {
		return nil, fmt.Errorf("core: Config.FullnessWatermark %v out of range (0, 1]", cfg.FullnessWatermark)
	}
	rpcCli := rpc.NewClientFrom(cfg.Network, cfg.CallTimeout, cfg.ClientName)
	if cfg.Tracer != nil {
		rpcCli.SetTracer(cfg.Tracer)
	}
	vmAddrs := cfg.VMAddrs
	if len(vmAddrs) == 0 {
		vmAddrs = []string{cfg.VMAddr}
	}
	return &Client{
		cfg:    cfg,
		rpc:    rpcCli,
		vm:     vmanager.NewCaller(rpcCli, vmAddrs),
		meta:   meta.NewClient(rpcCli, cfg.MetaProviders, cfg.MetaReplication, cfg.MetaCacheNodes),
		sem:    make(chan struct{}, cfg.ParallelIO),
		health: newProviderHealth(),
	}, nil
}

// Close releases the client's connections.
func (c *Client) Close() { c.rpc.Close() }

// RPC exposes the client's connection cache so services layered on
// BlobSeer (e.g. the BSFS namespace) can share it.
func (c *Client) RPC() *rpc.Client { return c.rpc }

// MetaCacheStats reports client-side metadata cache hits/misses.
func (c *Client) MetaCacheStats() (hits, misses int64) { return c.meta.CacheStats() }

// Blob is a handle on one blob.
type Blob struct {
	c           *Client
	id          uint64
	chunkSize   uint64
	replication uint32
}

// CreateBlob registers a new blob with the given chunk size (bytes) and
// data replication degree.
func (c *Client) CreateBlob(chunkSize uint64, replication uint32) (*Blob, error) {
	var resp vmanager.CreateResp
	err := c.vm.Call(vmanager.MethodCreate,
		&vmanager.CreateReq{ChunkSize: chunkSize, Replication: replication}, &resp)
	if err != nil {
		return nil, fmt.Errorf("core: create blob: %w", err)
	}
	if replication == 0 {
		replication = 1
	}
	return &Blob{c: c, id: resp.BlobID, chunkSize: chunkSize, replication: replication}, nil
}

// OpenBlob opens an existing blob by ID.
func (c *Client) OpenBlob(id uint64) (*Blob, error) {
	var info vmanager.InfoResp
	err := c.vm.Call(vmanager.MethodInfo, &vmanager.BlobRef{BlobID: id}, &info)
	if err != nil {
		return nil, fmt.Errorf("core: open blob %d: %w", id, mapVMError(err))
	}
	return &Blob{c: c, id: id, chunkSize: info.ChunkSize, replication: info.Replication}, nil
}

// ListBlobs enumerates all blob IDs known to the version manager.
func (c *Client) ListBlobs() ([]uint64, error) {
	var resp vmanager.ListResp
	if err := c.vm.Call(vmanager.MethodList, &vmanager.Ack{}, &resp); err != nil {
		return nil, fmt.Errorf("core: list blobs: %w", err)
	}
	return resp.IDs, nil
}

// ID returns the blob's identifier.
func (b *Blob) ID() uint64 { return b.id }

// ChunkSize returns the blob's chunk size in bytes.
func (b *Blob) ChunkSize() uint64 { return b.chunkSize }

// Replication returns the blob's data replication degree.
func (b *Blob) Replication() uint32 { return b.replication }

// Latest returns the newest published version and its size in bytes.
// A blob that was never written reports version 0, size 0.
func (b *Blob) Latest() (version, sizeBytes uint64, err error) {
	return b.latestCtx(context.Background())
}

func (b *Blob) latestCtx(ctx context.Context) (version, sizeBytes uint64, err error) {
	var resp vmanager.LatestResp
	err = b.c.vm.CallCtx(ctx, vmanager.MethodLatest, &vmanager.BlobRef{BlobID: b.id}, &resp)
	if err != nil {
		return 0, 0, fmt.Errorf("core: latest of blob %d: %w", b.id, mapVMError(err))
	}
	return resp.Version, resp.SizeBytes, nil
}

// Size returns the byte size of the given version (0 = latest published).
func (b *Blob) Size(version uint64) (uint64, error) {
	if version == 0 {
		_, size, err := b.Latest()
		return size, err
	}
	vi, err := b.versionInfo(version)
	if err != nil {
		return 0, err
	}
	return vi.SizeBytes, nil
}

func (b *Blob) versionInfo(version uint64) (*vmanager.VersionInfoResp, error) {
	return b.versionInfoCtx(context.Background(), version)
}

func (b *Blob) versionInfoCtx(ctx context.Context, version uint64) (*vmanager.VersionInfoResp, error) {
	var resp vmanager.VersionInfoResp
	err := b.c.vm.CallCtx(ctx, vmanager.MethodVersionInfo,
		&vmanager.VersionRef{BlobID: b.id, Version: version}, &resp)
	if err != nil {
		return nil, fmt.Errorf("core: version %d of blob %d: %w", version, b.id, mapVMError(err))
	}
	return &resp, nil
}

// WaitPublished blocks until version is published. Waiters on a blob that
// gets deleted are woken with ErrBlobDeleted.
func (b *Blob) WaitPublished(version uint64) error {
	return b.waitPublishedCtx(context.Background(), version)
}

func (b *Blob) waitPublishedCtx(ctx context.Context, version uint64) error {
	err := b.c.vm.CallCtx(ctx, vmanager.MethodWaitPublished,
		&vmanager.VersionRef{BlobID: b.id, Version: version}, &vmanager.Ack{})
	return mapVMError(err)
}

// allocate asks the provider manager for replica sets for n chunks,
// avoiding the excluded providers (retry after a full replica-set
// failure).
func (c *Client) allocate(ctx context.Context, n int, replication uint32, exclude []string) ([][]string, error) {
	var resp pmanager.AllocateResp
	err := c.rpc.CallCtx(ctx, c.cfg.PMAddr, pmanager.MethodAllocate,
		&pmanager.AllocateReq{NumChunks: uint32(n), Replication: replication, Exclude: exclude}, &resp)
	if err != nil {
		return nil, fmt.Errorf("core: allocate %d chunks: %w", n, err)
	}
	if len(resp.Sets) != n {
		return nil, fmt.Errorf("core: allocator returned %d sets for %d chunks", len(resp.Sets), n)
	}
	return resp.Sets, nil
}

// defaultFullnessWatermark matches the repair engine's default high-water
// mark: a provider above it is a migration SOURCE, so placing a retried
// chunk there would hand the repair plane immediate rebalance work (and
// risk a second failure if the first was capacity-related). Deployments
// override it via Config.FullnessWatermark.
const defaultFullnessWatermark = 0.85

// fullProviders lists providers above the fullness watermark, from the
// provider manager's report. Best effort: on any error the retry placement
// simply skips the fullness filter (allocation's own starvation safety
// still applies).
func (c *Client) fullProviders(ctx context.Context, watermark float64) []string {
	var resp pmanager.ReportResp
	if err := c.rpc.CallCtx(ctx, c.cfg.PMAddr, pmanager.MethodReport, &pmanager.Ack{}, &resp); err != nil {
		return nil
	}
	var full []string
	for _, p := range resp.Providers {
		if p.CapBytes == 0 {
			continue // capacity unknown: cannot judge fullness
		}
		used := p.CapBytes - p.FreeBytes
		if float64(used) >= watermark*float64(p.CapBytes) {
			full = append(full, p.Addr)
		}
	}
	return full
}

// parallel runs fn(0..n-1) with bounded concurrency and returns the first
// error.
func (c *Client) parallel(n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if n == 1 {
		return fn(0)
	}
	var wg sync.WaitGroup
	var firstErr atomic.Pointer[error]
	for i := 0; i < n; i++ {
		wg.Add(1)
		c.sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-c.sem }()
			if firstErr.Load() != nil {
				return
			}
			if err := fn(i); err != nil {
				firstErr.CompareAndSwap(nil, &err)
			}
		}(i)
	}
	wg.Wait()
	if e := firstErr.Load(); e != nil {
		return *e
	}
	return nil
}

// writeIDs generates process-unique identifiers for chunk keys: data is
// uploaded before a version number exists, so chunk identity cannot use
// the version (the paper uploads data first too).
var writeIDBase = rand.Uint64() | 1<<63 // high bit set: never collides with version numbers
var writeIDCounter atomic.Uint64

func nextWriteID() uint64 { return writeIDBase ^ writeIDCounter.Add(1) }
