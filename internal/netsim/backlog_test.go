package netsim

import (
	"errors"
	"testing"
	"time"
)

func TestBacklogRejectsWhenQueueFull(t *testing.T) {
	f := NewFabric(Config{
		BandwidthBps: 1e3, // 1 KB/s: trivially saturated
		MaxBacklog:   50 * time.Millisecond,
	})
	// First transfer queues 1s of transmit time (1000B at 1KB/s).
	if _, err := f.Delay("a", "b", 1000); err != nil {
		t.Fatalf("first transfer: %v", err)
	}
	// The next transfer sees a backlog way beyond 50ms and must fail.
	if _, err := f.Delay("a", "b", 10); !errors.Is(err, ErrBacklogFull) {
		t.Fatalf("second transfer: %v, want ErrBacklogFull", err)
	}
	// An unrelated NIC pair is unaffected.
	if _, err := f.Delay("c", "d", 10); err != nil {
		t.Fatalf("independent transfer: %v", err)
	}
}

func TestBacklogUnboundedByDefault(t *testing.T) {
	f := NewFabric(Config{BandwidthBps: 1e3})
	for i := 0; i < 5; i++ {
		if _, err := f.Delay("a", "b", 1000); err != nil {
			t.Fatalf("transfer %d: %v", i, err)
		}
	}
}

func TestBacklogDrains(t *testing.T) {
	f := NewFabric(Config{
		BandwidthBps: 1e6, // 1 MB/s
		MaxBacklog:   20 * time.Millisecond,
	})
	// 30 KB = 30ms of queue: next transfer rejected.
	if _, err := f.Delay("a", "b", 30000); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Delay("a", "b", 10); !errors.Is(err, ErrBacklogFull) {
		t.Fatalf("expected backlog rejection, got %v", err)
	}
	time.Sleep(35 * time.Millisecond)
	if _, err := f.Delay("a", "b", 10); err != nil {
		t.Fatalf("after drain: %v", err)
	}
}
