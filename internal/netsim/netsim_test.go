package netsim

import (
	"sync"
	"testing"
	"time"
)

func TestNilFabricIsPerfect(t *testing.T) {
	var f *Fabric
	d, err := f.Delay("a", "b", 1<<20)
	if err != nil || d != 0 {
		t.Fatalf("nil fabric: d=%v err=%v, want 0,nil", d, err)
	}
	if f.IsDown("a") {
		t.Error("nil fabric reports node down")
	}
	f.SetDown("a", true) // must not panic
	f.SetBandwidth("a", 1)
}

func TestDelayScalesWithSize(t *testing.T) {
	f := NewFabric(Config{BandwidthBps: 1e6}) // 1 MB/s
	d1, err := f.Delay("a", "b", 1000)
	if err != nil {
		t.Fatal(err)
	}
	// a fresh pair of NICs: second transfer queues behind the first
	d2, err := f.Delay("a", "b", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if d1 < 900*time.Microsecond || d1 > 5*time.Millisecond {
		t.Errorf("d1 = %v, want ~1ms", d1)
	}
	if d2 <= d1 {
		t.Errorf("queueing not modeled: d1=%v d2=%v", d1, d2)
	}
}

func TestLatencyAdded(t *testing.T) {
	f := NewFabric(Config{Latency: 10 * time.Millisecond})
	d, err := f.Delay("a", "b", 0)
	if err != nil {
		t.Fatal(err)
	}
	if d < 10*time.Millisecond {
		t.Errorf("d = %v, want >= 10ms", d)
	}
}

func TestPerMessageOverheadOnReceiver(t *testing.T) {
	f := NewFabric(Config{PerMessage: time.Millisecond})
	// ten messages to the same receiver queue serially: last sees ~10ms
	var last time.Duration
	for i := 0; i < 10; i++ {
		d, err := f.Delay("client", "server", 0)
		if err != nil {
			t.Fatal(err)
		}
		last = d
	}
	if last < 9*time.Millisecond {
		t.Errorf("receiver queueing too small: %v", last)
	}
	// messages to distinct receivers do not queue on each other
	d, err := f.Delay("client2", "other", 0)
	if err != nil {
		t.Fatal(err)
	}
	if d > 2*time.Millisecond {
		t.Errorf("independent receiver queued: %v", d)
	}
}

func TestTimeScaleDividesDelay(t *testing.T) {
	slow := NewFabric(Config{Latency: 100 * time.Millisecond})
	fast := NewFabric(Config{Latency: 100 * time.Millisecond, TimeScale: 100})
	ds, _ := slow.Delay("a", "b", 0)
	df, _ := fast.Delay("a", "b", 0)
	if df >= ds {
		t.Errorf("timescale not applied: slow=%v fast=%v", ds, df)
	}
	if df > 2*time.Millisecond {
		t.Errorf("fast delay = %v, want ~1ms", df)
	}
}

func TestDownNode(t *testing.T) {
	f := NewFabric(Config{})
	f.SetDown("b", true)
	if _, err := f.Delay("a", "b", 10); err != ErrNodeDown {
		t.Errorf("to down node: err = %v, want ErrNodeDown", err)
	}
	if _, err := f.Delay("b", "a", 10); err != ErrNodeDown {
		t.Errorf("from down node: err = %v, want ErrNodeDown", err)
	}
	f.SetDown("b", false)
	if _, err := f.Delay("a", "b", 10); err != nil {
		t.Errorf("after recovery: err = %v", err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	f := NewFabric(Config{})
	for i := 0; i < 5; i++ {
		if _, err := f.Delay("a", "b", 100); err != nil {
			t.Fatal(err)
		}
	}
	sa := f.NodeStats("a")
	sb := f.NodeStats("b")
	if sa.BytesOut != 500 {
		t.Errorf("a.BytesOut = %d, want 500", sa.BytesOut)
	}
	if sb.BytesIn != 500 || sb.MsgsIn != 5 {
		t.Errorf("b stats = %+v", sb)
	}
	if got := f.NodeStats("never"); got != (Stats{}) {
		t.Errorf("unknown node stats = %+v", got)
	}
}

func TestConcurrentDelaySafe(t *testing.T) {
	f := NewFabric(Config{BandwidthBps: 1e9, Jitter: time.Microsecond})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_, _ = f.Delay("x", "y", 1000)
			}
		}(i)
	}
	wg.Wait()
	if got := f.NodeStats("y").MsgsIn; got != 3200 {
		t.Errorf("MsgsIn = %d, want 3200", got)
	}
}

// Aggregate bandwidth across distinct NIC pairs must exceed a single pair's:
// the core scaling property every striping experiment relies on.
func TestAggregateBandwidthScales(t *testing.T) {
	f := NewFabric(Config{BandwidthBps: 1e6})
	// one pair, 10 transfers of 10KB => ~100ms serial on each NIC
	var single time.Duration
	for i := 0; i < 10; i++ {
		d, _ := f.Delay("c0", "p0", 10000)
		single = d
	}
	// ten disjoint pairs, 1 transfer each => each ~10ms
	var spread time.Duration
	for i := 0; i < 10; i++ {
		d, _ := f.Delay(string(rune('d'+i))+"-src", string(rune('d'+i))+"-dst", 10000)
		if d > spread {
			spread = d
		}
	}
	if spread*2 >= single {
		t.Errorf("striping gave no speedup: spread=%v single=%v", spread, single)
	}
}
