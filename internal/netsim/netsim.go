// Package netsim models the network fabric of a large-scale testbed
// (the reproduction's stand-in for Grid'5000). Every node address owns a
// simulated NIC with a finite bandwidth; a transfer of n bytes between two
// nodes reserves serial transmission time on both NICs and is additionally
// charged a per-message service overhead and a propagation latency.
//
// The model is intentionally simple — a serial link per NIC with FIFO
// queueing — because that is exactly the mechanism that produces the
// throughput shapes the BlobSeer evaluation is about: aggregate bandwidth
// that grows with the number of data providers, and a centralized server
// that saturates at 1/serviceTime requests per second.
//
// Reservations are made against a virtual per-NIC clock (nextFree), so the
// computed delays reflect queueing even though callers sleep in real time.
// All delays are divided by Config.TimeScale, letting experiments run the
// same contention pattern faster than real time.
package netsim

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// ErrNodeDown is returned for transfers involving a failed node.
var ErrNodeDown = errors.New("netsim: node is down")

// ErrBacklogFull is returned when a NIC's transmit queue (in simulated
// time) exceeds Config.MaxBacklog: the realistic failure mode of pushing
// traffic at a degraded node.
var ErrBacklogFull = errors.New("netsim: NIC backlog full")

// Config describes the fabric characteristics.
type Config struct {
	// Latency is the one-way propagation delay added to every message.
	Latency time.Duration
	// Jitter, if nonzero, adds a uniform random delay in [0, Jitter).
	Jitter time.Duration
	// BandwidthBps is the default per-NIC bandwidth in bytes/second.
	// Zero means unlimited (no transmission delay).
	BandwidthBps float64
	// PerMessage is the fixed service overhead charged on the *receiver*
	// NIC for every message, independent of size. This is what makes a
	// centralized metadata server saturate under high request rates.
	PerMessage time.Duration
	// TimeScale divides every delay; 1 (or 0) means real time, 10 means
	// the simulation runs 10x faster while preserving contention ratios.
	TimeScale float64
	// MaxBacklog bounds how far into the future a NIC may queue
	// transmissions; beyond it transfers fail with ErrBacklogFull.
	// Zero means unbounded.
	MaxBacklog time.Duration
	// Seed seeds the jitter source. Zero picks a fixed default so runs
	// are reproducible unless a seed is chosen explicitly.
	Seed int64
}

// Fabric is a shared-nothing collection of simulated NICs.
// The zero value is not usable; use NewFabric. A nil *Fabric is a valid
// "perfect network": all delays are zero and no node is ever down.
type Fabric struct {
	cfg Config

	mu    sync.Mutex
	nics  map[string]*nic
	down  map[string]bool
	rng   *rand.Rand
	rngMu sync.Mutex
}

type nic struct {
	mu       sync.Mutex
	bps      float64
	nextFree time.Time
	// counters for observability
	bytesIn  int64
	bytesOut int64
	msgsIn   int64
}

// NewFabric creates a fabric with the given configuration.
func NewFabric(cfg Config) *Fabric {
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 42
	}
	return &Fabric{
		cfg:  cfg,
		nics: make(map[string]*nic),
		down: make(map[string]bool),
		rng:  rand.New(rand.NewSource(seed)),
	}
}

func (f *Fabric) nicFor(addr string) *nic {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.nics[addr]
	if !ok {
		n = &nic{bps: f.cfg.BandwidthBps}
		f.nics[addr] = n
	}
	return n
}

// SetBandwidth overrides the bandwidth of one node's NIC.
func (f *Fabric) SetBandwidth(addr string, bps float64) {
	if f == nil {
		return
	}
	n := f.nicFor(addr)
	n.mu.Lock()
	n.bps = bps
	n.mu.Unlock()
}

// SetDown marks a node as failed (true) or healthy (false). Transfers
// involving a failed node return ErrNodeDown.
func (f *Fabric) SetDown(addr string, down bool) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.down[addr] = down
	f.mu.Unlock()
}

// IsDown reports whether addr is currently failed.
func (f *Fabric) IsDown(addr string) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.down[addr]
}

// reserve books n bytes plus overhead of serial transmission time on the
// NIC and returns how long from now the transmission completes. When the
// queue already extends more than maxBacklog into the future the transfer
// is rejected instead of queued.
func (n *nic) reserve(nbytes int, overhead, maxBacklog time.Duration, scale float64) (time.Duration, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := time.Now()
	if n.nextFree.Before(now) {
		n.nextFree = now
	}
	if maxBacklog > 0 && n.nextFree.Sub(now) > maxBacklog {
		return 0, ErrBacklogFull
	}
	var tx time.Duration
	if n.bps > 0 {
		tx = time.Duration(float64(nbytes) / n.bps * float64(time.Second))
	}
	tx += overhead
	tx = time.Duration(float64(tx) / scale)
	n.nextFree = n.nextFree.Add(tx)
	return n.nextFree.Sub(now), nil
}

// Delay computes the completion delay for sending nbytes from one address
// to another, reserving NIC time on both sides. It does not sleep; the
// caller schedules delivery after the returned duration.
func (f *Fabric) Delay(from, to string, nbytes int) (time.Duration, error) {
	if f == nil {
		return 0, nil
	}
	f.mu.Lock()
	if f.down[from] || f.down[to] {
		f.mu.Unlock()
		return 0, ErrNodeDown
	}
	f.mu.Unlock()

	src := f.nicFor(from)
	dst := f.nicFor(to)
	dSend, err := src.reserve(nbytes, 0, f.cfg.MaxBacklog, f.cfg.TimeScale)
	if err != nil {
		return 0, err
	}
	dRecv, err := dst.reserve(nbytes, f.cfg.PerMessage, f.cfg.MaxBacklog, f.cfg.TimeScale)
	if err != nil {
		return 0, err
	}
	d := dSend
	if dRecv > d {
		d = dRecv
	}
	lat := f.cfg.Latency
	if f.cfg.Jitter > 0 {
		f.rngMu.Lock()
		lat += time.Duration(f.rng.Int63n(int64(f.cfg.Jitter)))
		f.rngMu.Unlock()
	}
	d += time.Duration(float64(lat) / f.cfg.TimeScale)

	src.mu.Lock()
	src.bytesOut += int64(nbytes)
	src.mu.Unlock()
	dst.mu.Lock()
	dst.bytesIn += int64(nbytes)
	dst.msgsIn++
	dst.mu.Unlock()
	return d, nil
}

// Stats is a point-in-time snapshot of one NIC's counters.
type Stats struct {
	BytesIn  int64
	BytesOut int64
	MsgsIn   int64
}

// NodeStats returns the counters for addr (zeros if never used).
func (f *Fabric) NodeStats(addr string) Stats {
	if f == nil {
		return Stats{}
	}
	f.mu.Lock()
	n, ok := f.nics[addr]
	f.mu.Unlock()
	if !ok {
		return Stats{}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return Stats{BytesIn: n.bytesIn, BytesOut: n.bytesOut, MsgsIn: n.msgsIn}
}
