package trace

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestContextRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: 42, Span: 7, Sampled: true}
	ctx := NewContext(context.Background(), sc)
	got, ok := FromContext(ctx)
	if !ok || got != sc {
		t.Fatalf("FromContext = %+v, %v; want %+v, true", got, ok, sc)
	}
	if _, ok := FromContext(context.Background()); ok {
		t.Fatal("FromContext on empty ctx reported a trace")
	}
	if _, ok := FromContext(nil); ok {
		t.Fatal("FromContext(nil) reported a trace")
	}
}

func TestIDRoundTrip(t *testing.T) {
	for _, v := range []uint64{1, 0xdeadbeef, ^uint64(0)} {
		got, err := ParseID(ID(v))
		if err != nil || got != v {
			t.Fatalf("ParseID(ID(%d)) = %d, %v", v, got, err)
		}
	}
	if _, err := ParseID("not-hex"); err == nil {
		t.Fatal("ParseID accepted garbage")
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	ctx, a := tr.StartOp(context.Background(), "x")
	if a != nil {
		t.Fatal("nil tracer returned an active span")
	}
	if _, ok := FromContext(ctx); ok {
		t.Fatal("nil tracer attached a context")
	}
	a.SetBytes(1)
	a.Finish(nil)
	if tr.StartRoot("x") != nil || tr.StartRemote(SpanContext{Trace: 1}, "x") != nil {
		t.Fatal("nil tracer started a span")
	}
	if New("r", "n", NewRecorder(0, 0), 0, 0) != nil {
		t.Fatal("disabled sample rate did not return a nil tracer")
	}
}

func TestChildInheritsTraceAndVerdict(t *testing.T) {
	rec := NewRecorder(16, 16)
	tr := New("client", "c0", rec, 1, 0)
	ctx, root := tr.StartOp(context.Background(), "op.read")
	if root == nil || !root.Sampled() {
		t.Fatal("sample 1/1 root must be sampled")
	}
	_, child := tr.StartOp(ctx, "rpc.call")
	if child.span.Trace != root.span.Trace {
		t.Fatalf("child trace %x != root trace %x", child.span.Trace, root.span.Trace)
	}
	if child.span.Parent != root.span.ID {
		t.Fatalf("child parent %x != root span %x", child.span.Parent, root.span.ID)
	}
	child.Finish(nil)
	root.Finish(errors.New("boom"))
	spans := rec.Spans(root.TraceID(), false)
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	var sawErr bool
	for _, s := range spans {
		if s.Err == "boom" {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("root error not recorded")
	}
}

func TestRemoteSpanParenting(t *testing.T) {
	rec := NewRecorder(16, 16)
	tr := New("provider", "p1", rec, 1, 0)
	sc := SpanContext{Trace: 99, Span: 5, Sampled: true}
	a := tr.StartRemote(sc, "provider.getchunk")
	if a == nil || a.span.Trace != 99 || a.span.Parent != 5 {
		t.Fatalf("remote span = %+v", a)
	}
	// A trace-free frame still yields a local root for the flight
	// recorder — unsampled, so it publishes only if it turns out slow.
	local := tr.StartRemote(SpanContext{}, "m")
	if local == nil || local.Sampled() || local.span.Parent != 0 {
		t.Fatalf("trace-free remote span = %+v, want unsampled local root", local)
	}
	local.Finish(nil)
	if got := rec.Spans(local.TraceID(), false); len(got) != 0 {
		t.Fatalf("fast unsampled remote span was published: %+v", got[0])
	}
}

// TestFlightRecorderThreshold is the flight-recorder unit: an unsampled
// op below its method threshold is dropped, at/above it is retained on
// the slow ring, and per-method overrides beat the default.
func TestFlightRecorderThreshold(t *testing.T) {
	rec := NewRecorder(16, 16)
	tr := New("vmanager", "vm0", rec, 1<<30, 50*time.Millisecond) // sampling ~never fires
	tr.SetSlowThreshold("fast.method", 1*time.Hour)

	mkSpan := func(method string, dur time.Duration) {
		a := tr.StartRoot(method)
		a.span.Sampled = false // force the unsampled path regardless of the draw
		a.start = time.Now().Add(-dur)
		a.Finish(nil)
	}

	mkSpan("vm.commit", 10*time.Millisecond) // under default threshold: dropped
	if got := rec.Spans(0, true); len(got) != 0 {
		t.Fatalf("fast unsampled span retained: %+v", got[0])
	}
	mkSpan("vm.commit", 60*time.Millisecond) // over default: flight-recorded
	slow := rec.Spans(0, true)
	if len(slow) != 1 || !slow[0].Slow || slow[0].Method != "vm.commit" {
		t.Fatalf("slow ring = %+v, want one slow vm.commit", slow)
	}
	mkSpan("fast.method", 60*time.Millisecond) // override says 1h: dropped
	if got := rec.Spans(0, true); len(got) != 1 {
		t.Fatalf("override threshold ignored: %d slow spans", len(got))
	}
	// Slow spans must be visible in the unfiltered dump too.
	if got := rec.Spans(0, false); len(got) != 1 {
		t.Fatalf("slow span missing from full dump: %d", len(got))
	}
}

func TestRecorderFilters(t *testing.T) {
	rec := NewRecorder(8, 8)
	rec.Add(&Span{Trace: 1, ID: 10, Sampled: true, Start: 5})
	rec.Add(&Span{Trace: 1, ID: 11, Sampled: true, Slow: true, Start: 3})
	rec.Add(&Span{Trace: 2, ID: 20, Sampled: true, Start: 1})
	rec.Add(&Span{Trace: 3, ID: 30}) // neither sampled nor slow: dropped

	if got := rec.Spans(1, false); len(got) != 2 || got[0].ID != 11 || got[1].ID != 10 {
		t.Fatalf("trace filter/sort wrong: %+v", got)
	}
	if got := rec.Spans(0, false); len(got) != 3 {
		t.Fatalf("dedup across rings failed: %d spans", len(got))
	}
	if got := rec.Spans(0, true); len(got) != 1 || got[0].ID != 11 {
		t.Fatalf("slowOnly wrong: %+v", got)
	}
	if rec.Total() != 3 {
		t.Fatalf("Total = %d, want 3", rec.Total())
	}
}

func TestRingOverwrite(t *testing.T) {
	rec := NewRecorder(4, 4)
	for i := 1; i <= 10; i++ {
		rec.Add(&Span{Trace: uint64(i), ID: uint64(i), Sampled: true, Start: int64(i)})
	}
	got := rec.Spans(0, false)
	if len(got) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(got))
	}
	for _, s := range got {
		if s.Trace < 7 {
			t.Fatalf("old span %d survived overwrite", s.Trace)
		}
	}
}

// TestRecorderRaceHammer spins writers recording spans against readers
// snapshotting, and depends on -race for the verdict.
func TestRecorderRaceHammer(t *testing.T) {
	rec := NewRecorder(64, 16)
	tr := New("hammer", "h0", rec, 2, time.Microsecond)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c2, a := tr.StartOp(ctx, "hammer.op")
				_, child := tr.StartOp(c2, "hammer.child")
				child.SetBytes(int64(i))
				child.Finish(nil)
				a.Finish(nil)
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, s := range rec.Spans(0, false) {
					_ = s.Dur
				}
				_ = rec.Spans(0, true)
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	if rec.Total() == 0 {
		t.Fatal("hammer recorded nothing")
	}
}
