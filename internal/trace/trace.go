// Package trace is the hand-rolled distributed-tracing plane: a compact
// trace context (trace id, parent span id, sampling bit) rides every RPC
// frame, each role records finished spans into a lock-free per-process
// ring buffer, and a tail-based flight recorder force-retains any op
// slower than a per-method threshold regardless of the sampling verdict.
// Zero dependencies, same spirit as internal/metrics: the hot path is a
// couple of atomic stores and clock reads, all rendering happens at
// dump time.
//
// Lifecycle: a root span is started at an operation origin (core client
// op, blaster op, or a background-plane RPC), drawing the head-based
// 1/N sampling verdict once; every downstream hop derives a child span
// from the context and inherits the verdict. Trace ids travel on the
// wire even for unsampled ops, so a hop that trips its slow threshold
// is still retained and stitchable — the "always-record + client-side
// stitch" flight-recorder scheme.
package trace

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// SpanContext is what propagates: which trace this work belongs to,
// which span is the immediate parent, and whether the head-based
// sampler kept the trace.
type SpanContext struct {
	Trace   uint64
	Span    uint64
	Sampled bool
}

// Valid reports whether the context names a trace.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 }

type ctxKey struct{}

// NewContext returns ctx carrying sc.
func NewContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the span context from ctx, if any.
func FromContext(ctx context.Context) (SpanContext, bool) {
	if ctx == nil {
		return SpanContext{}, false
	}
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// ID formats a trace or span id the way every surface prints it.
func ID(v uint64) string { return fmt.Sprintf("%016x", v) }

// ParseID parses the hex form produced by ID (with or without leading
// zeros).
func ParseID(s string) (uint64, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad id %q: %w", s, err)
	}
	return v, nil
}

func newID() uint64 {
	for {
		if v := rand.Uint64(); v != 0 {
			return v
		}
	}
}

// Span is one finished unit of work as recorded on a role's ring.
// Start is unix microseconds; Dur is microseconds.
type Span struct {
	Trace   uint64 `json:"trace"`
	ID      uint64 `json:"span"`
	Parent  uint64 `json:"parent,omitempty"`
	Role    string `json:"role"`
	Node    string `json:"node,omitempty"`
	Method  string `json:"method"`
	Start   int64  `json:"start_us"`
	Dur     int64  `json:"dur_us"`
	Bytes   int64  `json:"bytes,omitempty"`
	Err     string `json:"err,omitempty"`
	Sampled bool   `json:"sampled,omitempty"`
	Slow    bool   `json:"slow,omitempty"`
}

// ring is a fixed-size lock-free overwrite buffer: writers claim a slot
// with one atomic increment and publish the span with one atomic
// pointer store; readers snapshot whatever is published. Overwrites
// simply drop the oldest spans — exactly what a flight recorder wants.
type ring struct {
	slots []atomic.Pointer[Span]
	cur   atomic.Uint64
}

func newRing(size int) *ring {
	return &ring{slots: make([]atomic.Pointer[Span], size)}
}

func (r *ring) add(s *Span) {
	i := r.cur.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(s)
}

func (r *ring) snapshot() []*Span {
	out := make([]*Span, 0, len(r.slots))
	for i := range r.slots {
		if s := r.slots[i].Load(); s != nil {
			out = append(out, s)
		}
	}
	return out
}

// Recorder holds one process's finished spans in two rings: recent
// (head-sampled spans) and slow (anything that tripped its per-method
// threshold, sampled or not). A span may appear in both.
type Recorder struct {
	recent *ring
	slow   *ring
	total  atomic.Int64
}

// Ring size defaults: recent is sized for a few seconds of sampled
// traffic, slow for the rare tail.
const (
	DefaultRecentSpans = 4096
	DefaultSlowSpans   = 1024
)

// NewRecorder creates a recorder; non-positive sizes take the defaults.
func NewRecorder(recentSize, slowSize int) *Recorder {
	if recentSize <= 0 {
		recentSize = DefaultRecentSpans
	}
	if slowSize <= 0 {
		slowSize = DefaultSlowSpans
	}
	return &Recorder{recent: newRing(recentSize), slow: newRing(slowSize)}
}

// Add records a finished span. Spans with the Sampled verdict land on
// the recent ring; spans flagged Slow land on the slow ring (and on
// both when both hold). Spans with neither are dropped — the caller
// normally filters, but Add is safe either way.
func (r *Recorder) Add(s *Span) {
	if r == nil || s == nil {
		return
	}
	kept := false
	if s.Sampled {
		r.recent.add(s)
		kept = true
	}
	if s.Slow {
		r.slow.add(s)
		kept = true
	}
	if kept {
		r.total.Add(1)
	}
}

// Total returns how many spans have been recorded since start
// (including ones since overwritten).
func (r *Recorder) Total() int64 {
	if r == nil {
		return 0
	}
	return r.total.Load()
}

// Spans returns the published spans, deduplicated across the two rings
// and sorted by start time. traceID filters to one trace when nonzero;
// slowOnly restricts to the slow ring.
func (r *Recorder) Spans(traceID uint64, slowOnly bool) []*Span {
	if r == nil {
		return nil
	}
	var raw []*Span
	if slowOnly {
		raw = r.slow.snapshot()
	} else {
		raw = append(r.recent.snapshot(), r.slow.snapshot()...)
	}
	type spanKey struct{ trace, id uint64 }
	seen := make(map[spanKey]bool, len(raw))
	out := make([]*Span, 0, len(raw))
	for _, s := range raw {
		if traceID != 0 && s.Trace != traceID {
			continue
		}
		k := spanKey{s.Trace, s.ID}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Tracer hands out spans for one role instance. All methods are
// nil-receiver safe, so call sites never guard. A Tracer with sample
// cap N keeps 1 in N root traces (1 = keep all); the flight recorder
// retains slow spans regardless.
type Tracer struct {
	role    string
	node    string
	rec     *Recorder
	sampleN uint64
	slowDef time.Duration
	slowBy  map[string]time.Duration // set before concurrent use
}

// New creates a tracer recording into rec. sampleN is the head-sampling
// denominator (1 = always sample, <=0 disables the tracer — New
// returns nil so all call sites no-op). slowDefault is the per-method
// slow threshold when no override is set (<=0 disables the flight
// recorder).
func New(role, node string, rec *Recorder, sampleN int, slowDefault time.Duration) *Tracer {
	if sampleN <= 0 || rec == nil {
		return nil
	}
	return &Tracer{
		role:    role,
		node:    node,
		rec:     rec,
		sampleN: uint64(sampleN),
		slowDef: slowDefault,
		slowBy:  make(map[string]time.Duration),
	}
}

// SetSlowThreshold overrides the flight-recorder threshold for one
// method. Not safe concurrently with active spans — configure at
// construction time.
func (t *Tracer) SetSlowThreshold(method string, d time.Duration) {
	if t == nil {
		return
	}
	t.slowBy[method] = d
}

// SlowThreshold reports the effective flight-recorder threshold for a
// method (0 = flight recorder off for it).
func (t *Tracer) SlowThreshold(method string) time.Duration {
	if t == nil {
		return 0
	}
	if d, ok := t.slowBy[method]; ok {
		return d
	}
	return t.slowDef
}

// Recorder exposes the tracer's recorder (nil for a nil tracer).
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

func (t *Tracer) sampled() bool {
	if t.sampleN <= 1 {
		return true
	}
	return rand.Uint64N(t.sampleN) == 0
}

// Active is an in-flight span. Zero-cost to carry around; Finish
// publishes it (or drops it, if neither sampled nor slow).
type Active struct {
	t     *Tracer
	span  Span
	start time.Time
}

// StartOp starts a span for a locally originated operation: a child of
// the context's trace when one is present, a fresh root (with its own
// sampling draw) otherwise. The returned context carries the new span
// as parent for downstream hops.
func (t *Tracer) StartOp(ctx context.Context, method string) (context.Context, *Active) {
	if t == nil {
		return ctx, nil
	}
	if sc, ok := FromContext(ctx); ok {
		a := t.startChild(sc, method)
		return NewContext(ctx, a.Context()), a
	}
	a := t.StartRoot(method)
	return NewContext(ctx, a.Context()), a
}

// StartRoot starts a root span with a fresh trace id and sampling draw.
func (t *Tracer) StartRoot(method string) *Active {
	if t == nil {
		return nil
	}
	return &Active{
		t: t,
		span: Span{
			Trace:   newID(),
			ID:      newID(),
			Role:    t.role,
			Node:    t.node,
			Method:  method,
			Sampled: t.sampled(),
		},
		start: time.Now(),
	}
}

// StartRemote starts a span parented on a context received from the
// wire — the server side of an RPC. A frame with no trace context (an
// unsampled caller, or a legacy peer) still gets a local unsampled
// root, so the flight recorder retains the op if it trips the slow
// threshold; head sampling stays the caller's decision, so such spans
// never publish to the recent ring.
func (t *Tracer) StartRemote(sc SpanContext, method string) *Active {
	if t == nil {
		return nil
	}
	if !sc.Valid() {
		a := t.StartRoot(method)
		a.span.Sampled = false
		return a
	}
	return t.startChild(sc, method)
}

func (t *Tracer) startChild(sc SpanContext, method string) *Active {
	return &Active{
		t: t,
		span: Span{
			Trace:   sc.Trace,
			ID:      newID(),
			Parent:  sc.Span,
			Role:    t.role,
			Node:    t.node,
			Method:  method,
			Sampled: sc.Sampled,
		},
		start: time.Now(),
	}
}

// Context returns the span context downstream hops should carry: this
// span as parent.
func (a *Active) Context() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: a.span.Trace, Span: a.span.ID, Sampled: a.span.Sampled}
}

// TraceID returns the trace id (0 for a nil span).
func (a *Active) TraceID() uint64 {
	if a == nil {
		return 0
	}
	return a.span.Trace
}

// Sampled reports the head-sampling verdict.
func (a *Active) Sampled() bool { return a != nil && a.span.Sampled }

// SetBytes attaches a payload size to the span.
func (a *Active) SetBytes(n int64) {
	if a != nil {
		a.span.Bytes = n
	}
}

// Finish stamps duration and error, applies the flight-recorder
// threshold, and publishes the span if it is sampled or slow.
func (a *Active) Finish(err error) {
	if a == nil {
		return
	}
	dur := time.Since(a.start)
	a.span.Start = a.start.UnixMicro()
	a.span.Dur = dur.Microseconds()
	if err != nil {
		a.span.Err = err.Error()
	}
	if thr := a.t.SlowThreshold(a.span.Method); thr > 0 && dur >= thr {
		a.span.Slow = true
	}
	if a.span.Sampled || a.span.Slow {
		s := a.span // copy: Active may be on the stack of a pooled goroutine
		a.t.rec.Add(&s)
	}
}
