package durable

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// collectingMirror records every batch it receives, in call order.
type collectingMirror struct {
	mu      sync.Mutex
	batches [][][]byte
	fail    error
}

func (c *collectingMirror) hook(records [][]byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fail != nil {
		return c.fail
	}
	cp := make([][]byte, len(records))
	for i, r := range records {
		cp[i] = append([]byte(nil), r...)
	}
	c.batches = append(c.batches, cp)
	return nil
}

func (c *collectingMirror) flat() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out [][]byte
	for _, b := range c.batches {
		out = append(out, b...)
	}
	return out
}

// TestMirrorSeesWALOrder is the replication-stream ordering contract:
// under concurrent fsync'd appends, the concatenation of mirrored batches
// must equal the WAL's replay order exactly — no gap, no reorder, no
// duplicate — because the standby replays the stream as its own journal.
func TestMirrorSeesWALOrder(t *testing.T) {
	for _, fsync := range []bool{true, false} {
		t.Run(fmt.Sprintf("fsync=%v", fsync), func(t *testing.T) {
			dir := t.TempDir()
			l, _, err := Open(dir, Options{Fsync: fsync})
			if err != nil {
				t.Fatal(err)
			}
			mir := &collectingMirror{}
			l.SetMirror(mir.hook)

			const goroutines, perG = 8, 25
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						if err := l.Append([]byte(fmt.Sprintf("g%d-r%d", g, i))); err != nil {
							t.Errorf("append: %v", err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			_, rec, err := Open(dir, Options{Fsync: fsync})
			if err != nil {
				t.Fatal(err)
			}
			mirrored := mir.flat()
			if len(mirrored) != len(rec.Records) {
				t.Fatalf("mirrored %d records, WAL replays %d", len(mirrored), len(rec.Records))
			}
			for i := range mirrored {
				if !bytes.Equal(mirrored[i], rec.Records[i]) {
					t.Fatalf("record %d: mirrored %q, WAL %q", i, mirrored[i], rec.Records[i])
				}
			}
		})
	}
}

// TestMirrorErrorFailsAppend: a mirror rejection surfaces to the appender
// (in quorum mode that is what gates the commit), while the record stays
// in the local WAL — the documented fsync-error-like partial failure that
// a later resync truncates.
func TestMirrorErrorFailsAppend(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("standby unreachable")
	l.SetMirror(func(records [][]byte) error { return boom })

	if err := l.Append([]byte("doomed")); !errors.Is(err, boom) {
		t.Fatalf("append with failing mirror: err = %v, want %v", err, boom)
	}
	l.SetMirror(nil)
	if err := l.Append([]byte("fine")); err != nil {
		t.Fatalf("append after detaching mirror: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err := Open(dir, Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("doomed"), []byte("fine")}
	if len(rec.Records) != len(want) {
		t.Fatalf("WAL replays %d records, want %d", len(rec.Records), len(want))
	}
	for i := range want {
		if !bytes.Equal(rec.Records[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, rec.Records[i], want[i])
		}
	}
}
