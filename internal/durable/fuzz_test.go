package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the replay path as if they were a
// WAL left behind by a crash. Replay must never panic, must never return a
// record extending past the valid prefix, and Open over the same bytes
// must truncate to exactly that prefix and accept new appends.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(appendFrame(nil, []byte("hello")))
	f.Add(appendFrame(appendFrame(nil, []byte("a")), []byte("bb"))[:11])
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		records, valid := ReplayBuffer(data)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0,%d]", valid, len(data))
		}
		// Re-encoding the recovered records must reproduce the valid
		// prefix byte-for-byte: replay is lossless on intact frames.
		var re []byte
		for _, r := range records {
			re = appendFrame(re, r)
		}
		if !bytes.Equal(re, data[:valid]) {
			t.Fatalf("re-encoded prefix differs: %x vs %x", re, data[:valid])
		}

		// The full Open path over the same bytes: same records, and the
		// log stays usable.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-0.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open on fuzzed wal: %v", err)
		}
		if len(rec.Records) != len(records) {
			t.Fatalf("Open recovered %d records, ReplayBuffer %d", len(rec.Records), len(records))
		}
		if err := l.Append([]byte("post-recovery")); err != nil {
			t.Fatal(err)
		}
		l.Close()
		_, rec2, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(rec2.Records) != len(records)+1 {
			t.Fatalf("after truncate+append: %d records, want %d", len(rec2.Records), len(records)+1)
		}
	})
}

// FuzzWALFrame round-trips one record through framing and checks that any
// single mutation of the encoding is either rejected outright or decodes
// to the identical payload (the CRC makes silent corruption a
// 2^-32 event; a mutation that happens to keep the frame valid must not
// change what the caller sees for the bytes it protects).
func FuzzWALFrame(f *testing.F) {
	f.Add([]byte("payload"), uint32(0), byte(1))
	f.Add([]byte{}, uint32(3), byte(0x80))
	f.Fuzz(func(t *testing.T, payload []byte, pos uint32, mask byte) {
		if len(payload) > 1<<16 {
			payload = payload[:1<<16]
		}
		frame := appendFrame(nil, payload)
		got, n, ok := decodeFrame(frame)
		if !ok || n != int64(len(frame)) || !bytes.Equal(got, payload) {
			t.Fatalf("clean round trip failed: ok=%v n=%d", ok, n)
		}
		if mask == 0 || len(frame) == 0 {
			return
		}
		mut := append([]byte(nil), frame...)
		mut[int(pos)%len(mut)] ^= mask
		got, _, ok = decodeFrame(mut)
		// A mutation in the length field can shorten the frame to a valid
		// prefix-free encoding only if the CRC still matches the shorter
		// payload; in every accepted case the payload handed back must be
		// internally consistent (CRC-verified), never silently corrupted
		// relative to its own header.
		if ok && int(binary4(mut[0:4])) != len(got) {
			t.Fatalf("accepted frame with inconsistent length")
		}
	})
}

func binary4(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// FuzzCoalescedBatchTear models a crash anywhere inside a group-commit
// write: a coalesced multi-record batch cut at an arbitrary byte must
// replay to an EXACT prefix of the batch's records — never a partial or
// reordered record, never a record conjured past the tear. This is the
// torn-tail invariant group commit leans on: members of a torn batch were
// never acknowledged, and recovery keeps whatever complete prefix made it
// to disk.
func FuzzCoalescedBatchTear(f *testing.F) {
	f.Add([]byte("a"), []byte("bb"), []byte("ccc"), uint16(5))
	f.Add([]byte{}, []byte{0xff}, []byte("tail"), uint16(0))
	f.Add([]byte("x"), []byte("y"), []byte("z"), uint16(1<<15))
	f.Fuzz(func(t *testing.T, p1, p2, p3 []byte, cut uint16) {
		records := [][]byte{p1, p2, p3}
		var batch []byte
		for _, r := range records {
			batch = appendFrame(batch, r)
		}
		c := int(cut) % (len(batch) + 1)
		got, valid := ReplayBuffer(batch[:c])
		if valid > int64(c) {
			t.Fatalf("valid prefix %d beyond tear %d", valid, c)
		}
		if len(got) > len(records) {
			t.Fatalf("recovered %d records from a %d-record torn batch", len(got), len(records))
		}
		for i, r := range got {
			if !bytes.Equal(r, records[i]) {
				t.Fatalf("record %d = %x, want %x (not an exact prefix)", i, r, records[i])
			}
		}
	})
}
