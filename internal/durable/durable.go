// Package durable implements the append-only record log underpinning
// BlobSeer's crash recovery: a write-ahead log (WAL) with CRC-framed
// records, an fsync policy, and snapshot-based log compaction. The version
// manager journals every state transition through it and the metadata
// providers persist their node stores with it, which is what turns a
// restart from total state loss into a replay (§IV-B: "we also introduced
// persistent data and metadata storage while keeping our initial RAM-based
// storage scheme as an underlying caching mechanism").
//
// # On-disk layout
//
// A log lives in one directory and consists of at most one snapshot file
// and one WAL file per generation:
//
//	snap-<gen>.bin   one CRC-framed record: the state snapshot
//	wal-<gen>.log    CRC-framed records appended since that snapshot
//
// Compaction writes snap-<gen+1> (tmp file, fsync, atomic rename), starts
// an empty wal-<gen+1>, and deletes the older generation. Open picks the
// newest generation with a valid snapshot (or the newest bare WAL when no
// snapshot exists yet), so a crash at any point during compaction leaves
// either the old or the new generation fully intact.
//
// # Record framing and torn tails
//
// Every record is framed as [u32 length][u32 CRC-32C of payload][payload].
// A crash mid-append leaves a torn tail: a partial header, a partial
// payload, or a payload that fails its CRC. Replay stops at the first
// invalid frame and Open physically truncates the file there, so recovery
// always yields an exact prefix of the records that were appended and new
// appends continue from a clean boundary. Mid-file corruption (a flipped
// bit) is indistinguishable from a torn tail and is handled the same way:
// everything before the damage survives, nothing after it is trusted.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// frameHeaderSize is the per-record overhead: u32 length + u32 CRC.
const frameHeaderSize = 8

// MaxRecord bounds a single record so a corrupt length prefix can never
// make replay allocate unbounded memory. 64 MiB comfortably fits the
// largest metadata node batch or version-manager snapshot.
const MaxRecord = 64 << 20

// castagnoli is the CRC-32C table (the polynomial used by storage systems
// for its hardware support and better error detection than IEEE).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("durable: log closed")

// ErrRecordTooLarge is returned when appending a record above MaxRecord.
var ErrRecordTooLarge = errors.New("durable: record exceeds MaxRecord")

// Options tune a log's durability/throughput trade-off.
type Options struct {
	// Fsync forces an fsync after every append (and batch). Without it,
	// appends reach the OS page cache immediately (surviving process
	// crashes) but can be lost to a whole-machine crash. Snapshots are
	// always fsynced regardless.
	Fsync bool
}

// Recovery is what Open found on disk: the newest valid snapshot (nil if
// none was ever taken) and every complete WAL record appended after it, in
// order.
type Recovery struct {
	Snapshot []byte
	Records  [][]byte
}

// Log is an open write-ahead log. Append and Compact are safe for
// concurrent use.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File // current wal-<gen>.log
	gen     uint64
	records uint64 // appended to the current generation since open/compact
	closed  bool

	// Group-commit state (Fsync mode only): concurrent appenders fold
	// their framed records into cur; one of them (the leader) writes and
	// fsyncs the whole batch while the next batch accumulates. The batch
	// window is bounded by the in-flight fsync — no timer ever delays an
	// append.
	gmu        sync.Mutex
	gcond      *sync.Cond
	cur        *commitBatch
	committing bool
	// mirror, when set, streams every committed batch to a replica (see
	// Mirror). Guarded by mmu; invoked while the batch's commit slot is
	// still held, so mirror calls are serialized in WAL order.
	mmu    sync.Mutex
	mirror Mirror
	// syncHook, when set (tests only), runs on the leader immediately
	// before each WAL fsync — a barrier that holds one commit in flight
	// while the test stacks up the next batch.
	syncHook func()

	// Cumulative durability-cost counters (see LogStats). The fsync
	// amortization of group commit is a performance claim; these are what
	// tests and benchmarks assert it on.
	statAppends atomic.Uint64 // records acknowledged
	statWrites  atomic.Uint64 // file write calls (one per coalesced batch)
	statSyncs   atomic.Uint64 // WAL fsyncs (snapshot fsyncs not included)
}

// commitBatch is one group-commit unit: the coalesced frames of every
// append that joined it, committed by a single write+fsync.
type commitBatch struct {
	buf  []byte
	n    uint64 // records in buf
	recs [][]byte // unframed records, kept only while a mirror is attached
	done bool
	err  error
}

// Mirror receives every record batch committed to the log, in exact WAL
// order, called synchronously on the commit path: a batch's appenders are
// not released until the mirror returns, so a replicated log pays one
// extra network write per fsync rather than per record. A non-nil error
// fails the batch's appends (the records are already in the local WAL —
// the same partial-failure surface an fsync error has always had; the
// write-ahead discipline of the callers keeps RAM consistent and the
// records are truncated away if this node is later fenced and resynced).
type Mirror func(records [][]byte) error

// LogStats is a snapshot of a log's cumulative durability costs. Under
// group commit Syncs may be far below Appends: concurrent appenders
// coalesce into one write+fsync.
type LogStats struct {
	Appends uint64 // records acknowledged as durable
	Writes  uint64 // WAL file writes (one per coalesced batch)
	Syncs   uint64 // WAL fsyncs
}

// Stats reports the log's cumulative append/write/fsync counts.
func (l *Log) Stats() LogStats {
	return LogStats{
		Appends: l.statAppends.Load(),
		Writes:  l.statWrites.Load(),
		Syncs:   l.statSyncs.Load(),
	}
}

// Open scans dir (creating it if needed), recovers the newest intact
// generation, truncates any torn WAL tail, and returns the log ready for
// appends plus what was recovered.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: creating log dir: %w", err)
	}
	snaps, wals, err := scanDir(dir)
	if err != nil {
		return nil, nil, err
	}

	rec := &Recovery{}
	gen := uint64(0)
	// Recover from the newest snapshot. Compact fsyncs every snapshot
	// before renaming it into place, so a published snapshot that fails
	// validation means real damage; silently falling back would present
	// the loss of everything it held as a clean, healthy open. Refuse
	// instead and make the operator decide.
	if len(snaps) > 0 {
		newest := snaps[len(snaps)-1]
		payload, err := readSnapshot(filepath.Join(dir, snapName(newest)))
		if err != nil {
			return nil, nil, fmt.Errorf("durable: snapshot %s is damaged; refusing to open and silently lose its state: %w",
				snapName(newest), err)
		}
		rec.Snapshot = payload
		gen = newest
	} else if len(wals) > 0 {
		// No snapshot ever taken: recover from the oldest WAL, which
		// holds the full history since genesis. (A newer bare WAL can
		// only be the empty leftover of a compaction that crashed before
		// publishing its snapshot.)
		gen = wals[0]
	}

	walPath := filepath.Join(dir, walName(gen))
	records, validLen, err := replayWAL(walPath)
	if err != nil {
		return nil, nil, err
	}
	rec.Records = records

	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: opening wal: %w", err)
	}
	// Physically drop the torn tail so appends continue from the last
	// complete record.
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("durable: truncating torn wal tail: %w", err)
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("durable: seeking wal: %w", err)
	}

	l := &Log{dir: dir, opts: opts, f: f, gen: gen, records: uint64(len(records))}
	l.gcond = sync.NewCond(&l.gmu)
	l.removeOtherGenerations(snaps, wals)
	return l, rec, nil
}

// Append durably adds one record to the log.
func (l *Log) Append(record []byte) error {
	return l.AppendBatch([][]byte{record})
}

// AppendBatch adds records as one write (and, under Fsync, one fsync), so
// batched mutations pay the durability cost once.
//
// Under Fsync, concurrent AppendBatch callers additionally GROUP-commit:
// while one batch's write+fsync is in flight, every arriving append folds
// into the next batch, and a single follower then commits them all with
// one fsync (classic leader/follower group commit, as in HDFS's batched
// namenode edit sync). N concurrent appenders therefore pay O(1) fsyncs
// per disk round trip instead of N. An append returns only after the
// batch containing it is durable, so the per-caller durability contract
// is unchanged; only the cost is amortized.
func (l *Log) AppendBatch(records [][]byte) error {
	total := 0
	for _, r := range records {
		if len(r) > MaxRecord {
			return ErrRecordTooLarge
		}
		total += frameHeaderSize + len(r)
	}
	if !l.opts.Fsync {
		// No fsync to amortize: write straight through. The OS sees the
		// bytes immediately (process-crash durability), and coalescing
		// would only add handoff latency.
		buf := make([]byte, 0, total)
		for _, r := range records {
			buf = appendFrame(buf, r)
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return ErrClosed
		}
		if _, err := l.f.Write(buf); err != nil {
			l.mu.Unlock()
			return fmt.Errorf("durable: appending wal record: %w", err)
		}
		l.statWrites.Add(1)
		l.records += uint64(len(records))
		l.statAppends.Add(uint64(len(records)))
		// Mirror while still holding l.mu: non-fsync appends have no
		// group-commit slot, so the file lock is what serializes
		// replication into WAL order.
		var err error
		if mirror := l.getMirror(); mirror != nil {
			err = mirror(records)
		}
		l.mu.Unlock()
		return err
	}

	return l.awaitCommit(l.join(records))
}

// SetMirror attaches (or, with nil, detaches) the log's replication hook.
// The mirror sees every batch committed after the call returns; a batch
// mid-commit at the switch may or may not be mirrored — callers sequence
// role changes so that window is idle or covered by a snapshot resync.
func (l *Log) SetMirror(m Mirror) {
	l.mmu.Lock()
	l.mirror = m
	l.mmu.Unlock()
}

func (l *Log) getMirror() Mirror {
	l.mmu.Lock()
	defer l.mmu.Unlock()
	return l.mirror
}

// AppendAsync reserves the record's position in the WAL order immediately
// and returns a wait function that blocks until the record is durable
// (committing it if no one else has). The split lets a caller serialize
// "fix the order" under its own state lock while paying the fsync outside
// it, so independent mutators group-commit instead of queueing their
// fsyncs behind one another. The caller MUST invoke wait; an unawaited
// record may never reach disk. Not available on a non-Fsync log (writes
// are synchronous there): the record is appended before returning and
// wait only reports the result.
func (l *Log) AppendAsync(record []byte) (wait func() error) {
	if len(record) > MaxRecord {
		return func() error { return ErrRecordTooLarge }
	}
	if !l.opts.Fsync {
		err := l.AppendBatch([][]byte{record})
		return func() error { return err }
	}
	b := l.join([][]byte{record})
	return func() error { return l.awaitCommit(b) }
}

// join folds records into the batch currently accumulating (starting one
// if needed), fixing their WAL order. Records within a batch keep join
// order and batches commit in creation order, so join order IS replay
// order.
func (l *Log) join(records [][]byte) *commitBatch {
	mirrored := l.getMirror() != nil
	l.gmu.Lock()
	defer l.gmu.Unlock()
	if l.cur == nil {
		l.cur = &commitBatch{}
	}
	b := l.cur
	for _, r := range records {
		b.buf = appendFrame(b.buf, r)
		if mirrored {
			b.recs = append(b.recs, r)
		}
	}
	b.n += uint64(len(records))
	return b
}

// awaitCommit blocks until batch b is durable, becoming its leader (the
// one caller that performs the write+fsync) if no commit is in flight.
// Whoever leaves the wait loop first with the batch still uncommitted
// leads it; everyone else waits for the leader's broadcast.
func (l *Log) awaitCommit(b *commitBatch) error {
	l.gmu.Lock()
	for {
		if b.done {
			err := b.err
			l.gmu.Unlock()
			return err
		}
		if !l.committing {
			break
		}
		l.gcond.Wait()
	}
	// b is uncommitted and nothing is in flight, so b is still l.cur
	// (batches leave cur only by being taken by a leader).
	l.committing = true
	l.cur = nil // appends arriving during our fsync form the next batch
	l.gmu.Unlock()

	err := l.commitFile(b)

	// Mirror after local durability, while this batch still owns the
	// commit slot: the next batch's leader cannot start until committing
	// clears below, so mirrored batches leave in exact WAL order and the
	// replication write rides the same slot as the fsync it follows.
	if err == nil && len(b.recs) > 0 {
		if mirror := l.getMirror(); mirror != nil {
			err = mirror(b.recs)
		}
	}

	l.gmu.Lock()
	b.err, b.done = err, true
	l.committing = false
	l.gcond.Broadcast()
	l.gmu.Unlock()
	return err
}

// commitFile makes one coalesced batch durable: a single write and a
// single fsync, serialized with Compact's generation switch by l.mu.
func (l *Log) commitFile(b *commitBatch) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if _, err := l.f.Write(b.buf); err != nil {
		return fmt.Errorf("durable: appending wal record: %w", err)
	}
	l.statWrites.Add(1)
	if hook := l.syncHook; hook != nil {
		hook()
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("durable: syncing wal: %w", err)
	}
	l.statSyncs.Add(1)
	l.records += b.n
	l.statAppends.Add(b.n)
	return nil
}

// Records reports how many records the current generation holds (recovered
// plus appended); callers use it to decide when to Compact.
func (l *Log) Records() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Compact atomically replaces the log's contents with one snapshot: the
// next replay will see snapshot plus only records appended after this
// call. The caller must ensure snapshot reflects every record appended so
// far (typically by excluding concurrent mutators around the call).
func (l *Log) Compact(snapshot []byte) error {
	if len(snapshot) > MaxRecord {
		return ErrRecordTooLarge
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	next := l.gen + 1

	// 1. Write the snapshot to a temp file and fsync it, so the rename
	// below never publishes a partially written snapshot.
	tmp := filepath.Join(l.dir, snapName(next)+".tmp")
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: creating snapshot: %w", err)
	}
	if _, err := tf.Write(appendFrame(nil, snapshot)); err != nil {
		tf.Close()
		return fmt.Errorf("durable: writing snapshot: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return fmt.Errorf("durable: syncing snapshot: %w", err)
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("durable: closing snapshot: %w", err)
	}

	// 2. Create the new generation's WAL BEFORE publishing the snapshot:
	// once the rename lands, recovery prefers the new generation, so from
	// that instant every future append must go to the new WAL. Creating
	// it first means a failure here leaves the old generation fully
	// authoritative (the unpublished .tmp and empty WAL are cleaned up by
	// the next Open).
	nf, err := os.OpenFile(filepath.Join(l.dir, walName(next)), os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: creating new wal: %w", err)
	}

	// 3. Atomically publish the snapshot and switch generations.
	if err := os.Rename(tmp, filepath.Join(l.dir, snapName(next))); err != nil {
		nf.Close()
		os.Remove(filepath.Join(l.dir, walName(next)))
		return fmt.Errorf("durable: publishing snapshot: %w", err)
	}
	syncDir(l.dir)
	old, oldGen := l.f, l.gen
	l.f, l.gen, l.records = nf, next, 0
	old.Close()
	os.Remove(filepath.Join(l.dir, walName(oldGen)))
	os.Remove(filepath.Join(l.dir, snapName(oldGen)))
	return nil
}

// Close flushes (fsyncs) and closes the log. Further operations fail with
// ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// appendFrame appends one framed record to buf.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// replayWAL reads every complete, CRC-valid record from path, stopping at
// the first torn or corrupt frame. It returns the records and the byte
// offset of the valid prefix (where appends should resume). A missing file
// is an empty log.
func replayWAL(path string) ([][]byte, int64, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("durable: reading wal: %w", err)
	}
	records, valid := ReplayBuffer(data)
	return records, valid, nil
}

// ReplayBuffer decodes framed records from data, stopping at the first
// incomplete or corrupt frame. It returns the decoded records and the
// length of the valid prefix. The returned records alias data.
func ReplayBuffer(data []byte) ([][]byte, int64) {
	var records [][]byte
	off := int64(0)
	for {
		rec, n, ok := decodeFrame(data[off:])
		if !ok {
			return records, off
		}
		records = append(records, rec)
		off += n
	}
}

// decodeFrame decodes one frame from the front of data, reporting its
// total encoded length. ok is false for a torn or corrupt frame.
func decodeFrame(data []byte) (payload []byte, n int64, ok bool) {
	if len(data) < frameHeaderSize {
		return nil, 0, false
	}
	size := binary.LittleEndian.Uint32(data[0:4])
	sum := binary.LittleEndian.Uint32(data[4:8])
	if size > MaxRecord || int64(size) > int64(len(data)-frameHeaderSize) {
		return nil, 0, false
	}
	payload = data[frameHeaderSize : frameHeaderSize+int64(size)]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, 0, false
	}
	return payload, frameHeaderSize + int64(size), true
}

// readSnapshot loads and validates one snapshot file: exactly one framed
// record with nothing after it.
func readSnapshot(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, n, ok := decodeFrame(data)
	if !ok || n != int64(len(data)) {
		return nil, fmt.Errorf("durable: invalid snapshot %s", path)
	}
	return payload, nil
}

// scanDir lists the snapshot and WAL generations present in dir, sorted
// ascending. Leftover .tmp files from interrupted compactions are removed.
func scanDir(dir string) (snaps, wals []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: scanning log dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			os.Remove(filepath.Join(dir, name))
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".bin"):
			if g, err := strconv.ParseUint(name[5:len(name)-4], 10, 64); err == nil {
				snaps = append(snaps, g)
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			if g, err := strconv.ParseUint(name[4:len(name)-4], 10, 64); err == nil {
				wals = append(wals, g)
			}
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	return snaps, wals, nil
}

// removeOtherGenerations deletes every snapshot/WAL file not belonging to
// the recovered generation (leftovers of interrupted compactions).
func (l *Log) removeOtherGenerations(snaps, wals []uint64) {
	for _, g := range snaps {
		if g != l.gen {
			os.Remove(filepath.Join(l.dir, snapName(g)))
		}
	}
	for _, g := range wals {
		if g != l.gen {
			os.Remove(filepath.Join(l.dir, walName(g)))
		}
	}
}

func snapName(gen uint64) string { return fmt.Sprintf("snap-%d.bin", gen) }
func walName(gen uint64) string  { return fmt.Sprintf("wal-%d.log", gen) }

// syncDir fsyncs a directory so a rename within it is durable. Errors are
// ignored: some filesystems refuse directory fsync, and the rename itself
// is still atomic.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
