package durable

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

func openFsyncT(t *testing.T, dir string) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(dir, Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	return l, rec
}

// pendingRecords reports how many records are queued in the accumulating
// (not yet committed) batch.
func (l *Log) pendingRecords() uint64 {
	l.gmu.Lock()
	defer l.gmu.Unlock()
	if l.cur == nil {
		return 0
	}
	return l.cur.n
}

// TestGroupCommitCoalesces is the fsync-amortization acceptance test: 16
// concurrent fsync'd appends must complete with measurably fewer fsyncs
// than appends. The sync hook holds the first append's fsync in flight
// while the other 15 stack up, so the coalescing is deterministic: the
// batch window is exactly the in-flight fsync, giving 2 fsyncs for 16
// appends.
func TestGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	l, _ := openFsyncT(t, dir)
	defer l.Close()

	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	var gate sync.Once
	l.syncHook = func() {
		entered <- struct{}{}
		gate.Do(func() { <-release }) // only the first fsync is held
	}

	const appenders = 16
	var wg sync.WaitGroup
	errs := make([]error, appenders)
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[0] = l.Append([]byte("rec-0"))
	}()
	<-entered // leader is mid-fsync, holding the commit in flight

	for i := 1; i < appenders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = l.Append([]byte(fmt.Sprintf("rec-%d", i)))
		}(i)
	}
	// Wait until all 15 latecomers have joined the accumulating batch,
	// then let the in-flight fsync finish.
	for l.pendingRecords() != appenders-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}

	st := l.Stats()
	if st.Appends != appenders {
		t.Fatalf("Appends = %d, want %d", st.Appends, appenders)
	}
	if st.Syncs != 2 || st.Writes != 2 {
		t.Errorf("16 concurrent appends cost %d fsyncs / %d writes, want 2 / 2 (group commit)", st.Syncs, st.Writes)
	}
	if st.Syncs >= st.Appends {
		t.Errorf("fsyncs (%d) not amortized below appends (%d)", st.Syncs, st.Appends)
	}

	// Every acknowledged record must replay.
	l.Close()
	_, rec := openFsyncT(t, dir)
	if len(rec.Records) != appenders {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), appenders)
	}
}

// TestGroupCommitConcurrentDurability hammers the group-commit path from
// many goroutines and checks the core contract: every acknowledged append
// is recovered after a reopen, in an order consistent with a WAL (each
// record exactly once).
func TestGroupCommitConcurrentDurability(t *testing.T) {
	dir := t.TempDir()
	l, _ := openFsyncT(t, dir)

	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("append w%d-%d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != workers*perWorker {
		t.Fatalf("Appends = %d, want %d", st.Appends, workers*perWorker)
	}
	// No Close: simulated kill -9 (fsync'd appends need no flush).
	_, rec := openFsyncT(t, dir)
	if len(rec.Records) != workers*perWorker {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), workers*perWorker)
	}
	seen := make(map[string]bool, len(rec.Records))
	lastPerWorker := make(map[byte]int)
	for _, r := range rec.Records {
		s := string(r)
		if seen[s] {
			t.Fatalf("record %q recovered twice", s)
		}
		seen[s] = true
		var w, i int
		if _, err := fmt.Sscanf(s, "w%d-%d", &w, &i); err != nil {
			t.Fatalf("unexpected record %q", s)
		}
		// Per-worker order must be preserved: a worker's append i is only
		// issued after its append i-1 was acknowledged durable.
		if last, ok := lastPerWorker[byte(w)]; ok && i != last+1 {
			t.Fatalf("worker %d records out of order: %d after %d", w, i, last)
		}
		lastPerWorker[byte(w)] = i
	}
}

// TestAppendAsyncOrderIsReplayOrder checks the order-reservation contract
// of AppendAsync: records join the WAL in AppendAsync call order even when
// the waits run later and concurrently.
func TestAppendAsyncOrderIsReplayOrder(t *testing.T) {
	dir := t.TempDir()
	l, _ := openFsyncT(t, dir)

	// Hold one commit in flight so all async appends land in one batch.
	release := make(chan struct{})
	var gate sync.Once
	entered := make(chan struct{}, 2)
	l.syncHook = func() {
		entered <- struct{}{}
		gate.Do(func() { <-release })
	}
	go l.Append([]byte("head"))
	<-entered

	const n = 10
	waits := make([]func() error, n)
	for i := 0; i < n; i++ {
		waits[i] = l.AppendAsync([]byte(fmt.Sprintf("async-%d", i)))
	}
	close(release)
	var wg sync.WaitGroup
	for i := n - 1; i >= 0; i-- { // await in reverse: order must not care
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := waits[i](); err != nil {
				t.Errorf("wait %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	l.Close()

	_, rec := openFsyncT(t, dir)
	if len(rec.Records) != n+1 {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), n+1)
	}
	for i := 0; i < n; i++ {
		if want := fmt.Sprintf("async-%d", i); string(rec.Records[i+1]) != want {
			t.Fatalf("record %d = %q, want %q", i+1, rec.Records[i+1], want)
		}
	}
}

// TestTornCoalescedBatchRecoversAckedPrefix is the crash-mid-group-commit
// replay test: a batch of acknowledged appends followed by a coalesced
// batch torn mid-write (the crash happened before its fsync returned, so
// none of its members were acknowledged) must recover every acknowledged
// record plus at most a complete-frame prefix of the torn batch — never a
// partial record, never a lost acknowledged one.
func TestTornCoalescedBatchRecoversAckedPrefix(t *testing.T) {
	dir := t.TempDir()
	l, _ := openFsyncT(t, dir)

	// Batch 1: three acknowledged appends (one coalesced AppendBatch).
	acked := [][]byte{[]byte("acked-a"), []byte("acked-b"), []byte("acked-c")}
	if err := l.AppendBatch(acked); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Batch 2: a coalesced group-commit buffer (D, E, F) whose write was
	// torn mid-frame-E by the crash — exactly what a kill -9 during the
	// leader's write+fsync leaves behind.
	var batch []byte
	batch = appendFrame(batch, []byte("unacked-d"))
	cut := len(batch) + frameHeaderSize + 3 // mid-payload of E
	batch = appendFrame(batch, []byte("unacked-e"))
	batch = appendFrame(batch, []byte("unacked-f"))
	f, err := os.OpenFile(walPath(t, dir), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(batch[:cut]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, rec := openFsyncT(t, dir)
	defer re.Close()
	// Every acknowledged record, in order; then the torn batch's complete
	// prefix (D), and nothing after the tear.
	want := [][]byte{[]byte("acked-a"), []byte("acked-b"), []byte("acked-c"), []byte("unacked-d")}
	if len(rec.Records) != len(want) {
		t.Fatalf("recovered %d records %q, want %d", len(rec.Records), rec.Records, len(want))
	}
	for i := range want {
		if !bytes.Equal(rec.Records[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, rec.Records[i], want[i])
		}
	}
	// The log must keep working from the truncation point.
	if err := re.Append([]byte("post-crash")); err != nil {
		t.Fatal(err)
	}
	re.Close()
	_, rec = openFsyncT(t, dir)
	if len(rec.Records) != 5 || !bytes.Equal(rec.Records[4], []byte("post-crash")) {
		t.Fatalf("post-crash append not recovered: %q", rec.Records)
	}
}
