package durable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, dir string) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return l, rec
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := openT(t, dir)
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh log recovered %d records, snapshot=%v", len(rec.Records), rec.Snapshot)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		r := []byte(fmt.Sprintf("record-%d", i))
		want = append(want, r)
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, rec := openT(t, dir)
	defer re.Close()
	if rec.Snapshot != nil {
		t.Error("unexpected snapshot")
	}
	if len(rec.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), len(want))
	}
	for i := range want {
		if !bytes.Equal(rec.Records[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, rec.Records[i], want[i])
		}
	}
}

func TestRecoveryWithoutClose(t *testing.T) {
	// Simulated kill -9: the log is never closed, yet every appended
	// record must replay (appends hit the file immediately, no user-space
	// buffering).
	dir := t.TempDir()
	l, _ := openT(t, dir)
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// No Close. Reopen the same directory.
	re, rec := openT(t, dir)
	defer re.Close()
	if len(rec.Records) != 10 {
		t.Fatalf("recovered %d records without Close, want 10", len(rec.Records))
	}
}

func walPath(t *testing.T, dir string) string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(m) != 1 {
		t.Fatalf("wal files = %v (err %v), want exactly one", m, err)
	}
	return m[0]
}

func TestTornTailTruncatedAndOverwritten(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte{1, 2, 3, byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Crash mid-append: a frame header promising more bytes than exist.
	f, err := os.OpenFile(walPath(t, dir), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01})
	f.Close()

	re, rec := openT(t, dir)
	if len(rec.Records) != 5 {
		t.Fatalf("recovered %d records, want 5 (torn tail dropped)", len(rec.Records))
	}
	// The torn tail must be gone from disk; a fresh append and another
	// replay must see exactly 6 records.
	if err := re.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	re.Close()
	_, rec = openT(t, dir)
	if len(rec.Records) != 6 || !bytes.Equal(rec.Records[5], []byte("after")) {
		t.Fatalf("after truncation+append: %d records", len(rec.Records))
	}
}

func TestBitFlipStopsReplayAtDamage(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	for i := 0; i < 8; i++ {
		if err := l.Append(bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	path := walPath(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload bit inside the 4th record. Each frame is 8+32 bytes.
	data[3*40+frameHeaderSize+10] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	re, rec := openT(t, dir)
	defer re.Close()
	if len(rec.Records) != 3 {
		t.Fatalf("recovered %d records past a bit flip, want 3", len(rec.Records))
	}
}

func TestCompactAndRecover(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	for i := 0; i < 20; i++ {
		if err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact([]byte("state-at-20")); err != nil {
		t.Fatal(err)
	}
	if got := l.Records(); got != 0 {
		t.Fatalf("records after compact = %d, want 0", got)
	}
	if err := l.Append([]byte("past-snapshot")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	re, rec := openT(t, dir)
	defer re.Close()
	if string(rec.Snapshot) != "state-at-20" {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
	if len(rec.Records) != 1 || string(rec.Records[0]) != "past-snapshot" {
		t.Fatalf("post-snapshot records = %v", rec.Records)
	}
	// Old generation files must be gone.
	m, _ := filepath.Glob(filepath.Join(dir, "*"))
	if len(m) != 2 {
		t.Fatalf("dir holds %v, want exactly snap+wal of one generation", m)
	}
}

func TestRepeatedCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	for gen := 0; gen < 5; gen++ {
		for i := 0; i < 3; i++ {
			if err := l.Append([]byte{byte(gen), byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Compact([]byte(fmt.Sprintf("snap-%d", gen))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	re, rec := openT(t, dir)
	defer re.Close()
	if string(rec.Snapshot) != "snap-4" || len(rec.Records) != 0 {
		t.Fatalf("snapshot = %q with %d records", rec.Snapshot, len(rec.Records))
	}
}

func TestCrashDuringCompactionFallsBack(t *testing.T) {
	// An interrupted compaction (snapshot .tmp present, old generation
	// intact) recovers the old generation and cleans up.
	dir := t.TempDir()
	l, _ := openT(t, dir)
	for i := 0; i < 4; i++ {
		l.Append([]byte{byte(i)})
	}
	l.Close()
	if err := os.WriteFile(filepath.Join(dir, "snap-1.bin.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	re, rec := openT(t, dir)
	defer re.Close()
	if len(rec.Records) != 4 || rec.Snapshot != nil {
		t.Fatalf("recovered %d records, snapshot %v", len(rec.Records), rec.Snapshot)
	}
	if _, err := os.Stat(filepath.Join(dir, "snap-1.bin.tmp")); !os.IsNotExist(err) {
		t.Error("stale .tmp snapshot not cleaned up")
	}
}

func TestCorruptSnapshotRefusedLoudly(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	l.Append([]byte("old-gen-record"))
	l.Compact([]byte("good-snap"))
	l.Append([]byte("new-record"))
	l.Close()
	// Corrupt the published snapshot in place. Snapshots are fsynced
	// before the rename publishes them, so this is damage, not a torn
	// write — recovery must refuse rather than silently open with the
	// snapshot's entire state missing.
	m, _ := filepath.Glob(filepath.Join(dir, "snap-*.bin"))
	if len(m) != 1 {
		t.Fatalf("snapshots = %v", m)
	}
	data, _ := os.ReadFile(m[0])
	data[len(data)-1] ^= 0xff
	os.WriteFile(m[0], data, 0o644)

	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("open with corrupt snapshot succeeded silently")
	}
}

func TestAppendBatchIsOneFlushUnit(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	batch := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	if err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if got := l.Records(); got != 3 {
		t.Fatalf("Records() = %d, want 3", got)
	}
	l.Close()
	_, rec := openT(t, dir)
	if len(rec.Records) != 3 || string(rec.Records[2]) != "ccc" {
		t.Fatalf("recovered %v", rec.Records)
	}
}

func TestFsyncOptionRoundTrips(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("synced")); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact([]byte("snap")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, rec := openT(t, dir)
	if string(rec.Snapshot) != "snap" {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
}

func TestClosedLogRejectsOperations(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	l.Close()
	if err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.Compact(nil); err != ErrClosed {
		t.Fatalf("Compact after Close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close = %v", err)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	defer l.Close()
	if err := l.Append(make([]byte, MaxRecord+1)); err != ErrRecordTooLarge {
		t.Fatalf("oversize append = %v, want ErrRecordTooLarge", err)
	}
}
