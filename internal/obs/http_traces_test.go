package obs_test

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// TestDebugTracesEndpoint serves a recorder over real HTTP and exercises
// every /debug/traces query shape: the full recent dump, the one-trace
// filter, and the flight-recorder view — plus the pprof gate in both
// positions.
func TestDebugTracesEndpoint(t *testing.T) {
	rec := trace.NewRecorder(0, 0)
	tr := trace.New("provider", "dp0", rec, 1, time.Millisecond)

	fast := tr.StartRoot("provider.get")
	fast.Finish(nil)
	slow := tr.StartRoot("provider.put")
	time.Sleep(3 * time.Millisecond) // span duration is wall-clock: trips the 1ms threshold
	slow.Finish(nil)

	h, err := obs.ServeHTTPWith("127.0.0.1:0", obs.HTTPConfig{Traces: rec, Pprof: true})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	base := "http://" + h.Addr()

	get := func(path string) obs.TracesResponse {
		t.Helper()
		res, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, res.StatusCode)
		}
		var out obs.TracesResponse
		if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return out
	}

	all := get("/debug/traces")
	if all.Total != 2 || len(all.Spans) != 2 {
		t.Fatalf("full dump: total=%d spans=%d, want 2/2", all.Total, len(all.Spans))
	}

	slowOnly := get("/debug/traces?slow=1")
	if len(slowOnly.Spans) != 1 || slowOnly.Spans[0].Method != "provider.put" || !slowOnly.Spans[0].Slow {
		t.Fatalf("flight recorder view = %+v, want just the slow provider.put", slowOnly.Spans)
	}

	id := slowOnly.Spans[0].Trace
	one := get("/debug/traces?trace=" + formatID(id))
	if len(one.Spans) != 1 || one.Spans[0].Trace != id {
		t.Fatalf("trace filter returned %d spans", len(one.Spans))
	}

	if res, err := http.Get(base + "/debug/traces?trace=zzz"); err != nil {
		t.Fatal(err)
	} else {
		res.Body.Close()
		if res.StatusCode != http.StatusBadRequest {
			t.Errorf("bad trace id: status %d, want 400", res.StatusCode)
		}
	}

	// pprof mounted when asked for...
	if res, err := http.Get(base + "/debug/pprof/cmdline"); err != nil {
		t.Fatal(err)
	} else {
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Errorf("pprof on: status %d, want 200", res.StatusCode)
		}
	}

	// ...and absent — along with /debug/traces — on a default server.
	plain, err := obs.ServeHTTPWith("127.0.0.1:0", obs.HTTPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	for _, path := range []string{"/debug/pprof/cmdline", "/debug/traces"} {
		res, err := http.Get("http://" + plain.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusNotFound {
			t.Errorf("default server %s: status %d, want 404", path, res.StatusCode)
		}
	}
}

func formatID(id uint64) string {
	const hex = "0123456789abcdef"
	out := make([]byte, 16)
	for i := 15; i >= 0; i-- {
		out[i] = hex[id&0xf]
		id >>= 4
	}
	return string(out)
}
