package obs_test

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
)

// TestClusterMetricsScrape boots a full deployment with the metrics plane
// on, drives traffic through every role, then scrapes /metrics over real
// HTTP and asserts (a) the exposition is well-formed Prometheus text and
// (b) every role shows up: per-method RPC latency histograms for
// vmanager/metadata/provider servers, client round-trips, and the plane
// counters (GC, lease, WAL, provider inventory, pmanager membership).
func TestClusterMetricsScrape(t *testing.T) {
	c, err := cluster.Start(cluster.Config{
		DataProviders: 4,
		MetaProviders: 2,
		MetricsListen: "127.0.0.1:0",
		LeaseTTL:      time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Registry() == nil {
		t.Fatal("MetricsListen must imply an active registry")
	}

	cli, err := c.NewClient(cluster.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := cli.CreateBlob(1<<10, 2)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 4<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := blob.Write(payload, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(payload))
	if _, err := blob.Read(0, buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := blob.Append(payload[:1<<10]); err != nil {
		t.Fatal(err)
	}

	// Healthz first.
	base := "http://" + c.MetricsAddr()
	hres, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hres.Body)
	hres.Body.Close()
	if hres.StatusCode != 200 || strings.TrimSpace(string(hbody)) != "ok" {
		t.Fatalf("/healthz: %d %q", hres.StatusCode, hbody)
	}

	res, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("/metrics: status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type: %q", ct)
	}
	out := string(body)

	assertWellFormed(t, out)

	// Every role's RPC server histograms, by role label.
	for _, role := range []string{"vmanager", "metadata", "provider", "pmanager"} {
		want := fmt.Sprintf(`blobseer_rpc_server_request_seconds_bucket{role=%q,method=`, role)
		if !strings.Contains(out, want) {
			t.Errorf("no server RPC latency series for role %s", role)
		}
	}
	// Client-side round trips from the core client.
	if !strings.Contains(out, `blobseer_rpc_client_roundtrip_seconds_bucket{role="client",method=`) {
		t.Error("no client round-trip series")
	}

	// Plane counters from every subsystem.
	for _, fam := range []string{
		"blobseer_gc_pending_blobs",
		"blobseer_lease_active",
		"blobseer_lease_ttl_seconds",
		"blobseer_pm_providers_live",
		"blobseer_pm_provider_fullness{provider=",
		"blobseer_provider_chunks{instance=",
		"blobseer_provider_bytes_in_total{instance=",
		"blobseer_meta_nodes{instance=",
		"blobseer_client_chunk_bytes_out_total{instance=",
	} {
		if !strings.Contains(out, fam) {
			t.Errorf("exposition missing family %s", fam)
		}
	}

	// The traffic we drove must be visible: at least one provider.get and
	// one vm.create observed server-side.
	if !regexp.MustCompile(`blobseer_rpc_server_request_seconds_count\{role="provider",method="[^"]+"\} [1-9]`).MatchString(out) {
		t.Error("provider RPC histogram never incremented")
	}
}

// assertWellFormed parses the exposition line by line: every sample line
// must match the text-format grammar, every family must declare HELP and
// TYPE before its first sample, and histogram buckets must be cumulative
// with a terminal +Inf.
func assertWellFormed(t *testing.T, out string) {
	t.Helper()
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (NaN|[-+]?(Inf|[0-9].*))$`)
	declared := map[string]bool{}
	var lines int
	for _, line := range strings.Split(out, "\n") {
		if line == "" {
			continue
		}
		lines++
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Fatalf("malformed comment line: %q", line)
			}
			declared[parts[2]] = true
			continue
		}
		if !sample.MatchString(line) {
			t.Fatalf("malformed sample line: %q", line)
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !declared[name] && !declared[base] {
			t.Fatalf("sample %q has no preceding HELP/TYPE", name)
		}
	}
	if lines < 20 {
		t.Fatalf("suspiciously small exposition (%d lines):\n%s", lines, out)
	}
}
