package obs

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/metrics"
)

// HTTPServer serves a registry over HTTP: GET /metrics renders Prometheus
// text exposition format, GET /healthz is a liveness probe. One runs next
// to every blobseerd role's RPC listener (and next to the cluster harness
// when Config.MetricsListen is set).
type HTTPServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeHTTP starts serving reg on listen (host:port; ":0" picks a free
// port — read it back with Addr).
func ServeHTTP(listen string, reg *metrics.Registry) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s := &HTTPServer{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 10 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *HTTPServer) Close() { _ = s.srv.Close() }
