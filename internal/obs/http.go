package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// HTTPServer serves a registry over HTTP: GET /metrics renders Prometheus
// text exposition format, GET /healthz is a liveness probe, GET
// /debug/traces dumps the process's span rings as JSON, and (opt-in)
// /debug/pprof exposes the stdlib profiler. One runs next to every
// blobseerd role's RPC listener (and next to the cluster harness when
// Config.MetricsListen is set).
type HTTPServer struct {
	ln  net.Listener
	srv *http.Server
}

// HTTPConfig selects what the obs HTTP server exposes.
type HTTPConfig struct {
	// Registry backs /metrics (required).
	Registry *metrics.Registry
	// Traces backs /debug/traces when non-nil.
	Traces *trace.Recorder
	// Pprof mounts net/http/pprof under /debug/pprof/ — off by default
	// since profile endpoints can stall a process under load.
	Pprof bool
}

// ServeHTTP starts serving reg on listen (host:port; ":0" picks a free
// port — read it back with Addr).
func ServeHTTP(listen string, reg *metrics.Registry) (*HTTPServer, error) {
	return ServeHTTPWith(listen, HTTPConfig{Registry: reg})
}

// ServeHTTPWith is ServeHTTP with the full endpoint selection.
func ServeHTTPWith(listen string, cfg HTTPConfig) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if cfg.Registry != nil {
			_ = cfg.Registry.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if cfg.Traces != nil {
		rec := cfg.Traces
		mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
			serveTraces(w, r, rec)
		})
	}
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s := &HTTPServer{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 10 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// TracesResponse is the JSON shape of /debug/traces.
type TracesResponse struct {
	// Total counts spans recorded since process start (including ones
	// the rings have since overwritten).
	Total int64         `json:"total"`
	Spans []*trace.Span `json:"spans"`
}

// serveTraces dumps the recorder's spans. Query parameters:
// ?trace=<hex id> filters to one trace, ?slow=1 restricts to the
// flight-recorder ring.
func serveTraces(w http.ResponseWriter, r *http.Request, rec *trace.Recorder) {
	var traceID uint64
	if s := r.URL.Query().Get("trace"); s != "" {
		id, err := trace.ParseID(s)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		traceID = id
	}
	slowOnly := r.URL.Query().Get("slow") == "1"
	resp := TracesResponse{
		Total: rec.Total(),
		Spans: rec.Spans(traceID, slowOnly),
	}
	if resp.Spans == nil {
		resp.Spans = []*trace.Span{}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(resp)
}

// Addr returns the bound listen address.
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *HTTPServer) Close() { _ = s.srv.Close() }
