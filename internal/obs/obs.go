// Package obs wires the planes' existing instrumentation — meta.RPCStats,
// core.IOStats, the WAL's durable.LogStats, GC/repair/lease totals,
// provider inventories, pmanager membership — into a metrics.Registry and
// serves it over HTTP in Prometheus text format. Every blobseerd role and
// the in-process cluster harness use the same family names, so dashboards
// and scrape configs do not care how a deployment is assembled.
package obs

import (
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/meta"
	"repro/internal/metrics"
	"repro/internal/pmanager"
	"repro/internal/provider"
	"repro/internal/rpc"
	"repro/internal/vmanager"
)

// RPCMetrics holds the per-RPC instruments one process exposes: server
// request latency/bytes/errors per (role, method), client round-trip
// latency per (role, method) and redial counts per role. One instance is
// shared by every role in the process (the cluster harness runs them all).
type RPCMetrics struct {
	srvLatency  *metrics.HistogramVec
	srvBytesIn  *metrics.CounterVec
	srvBytesOut *metrics.CounterVec
	srvErrors   *metrics.CounterVec
	srvPanics   *metrics.CounterVec

	cliLatency *metrics.HistogramVec
	cliErrors  *metrics.CounterVec
	cliRedials *metrics.CounterVec
}

// NewRPCMetrics creates the rpc-plane instruments and registers them.
func NewRPCMetrics(reg *metrics.Registry) *RPCMetrics {
	m := &RPCMetrics{
		srvLatency: metrics.NewHistogramVec("blobseer_rpc_server_request_seconds",
			"Server-side request latency by role and method.",
			[]string{"role", "method"}, metrics.DefLatencyBuckets),
		srvBytesIn: metrics.NewCounterVec("blobseer_rpc_server_bytes_in_total",
			"Request payload bytes received by role and method.",
			[]string{"role", "method"}),
		srvBytesOut: metrics.NewCounterVec("blobseer_rpc_server_bytes_out_total",
			"Response payload bytes sent by role and method.",
			[]string{"role", "method"}),
		srvErrors: metrics.NewCounterVec("blobseer_rpc_server_errors_total",
			"Error responses by role and method (handler errors, unknown methods and recovered panics).",
			[]string{"role", "method"}),
		srvPanics: metrics.NewCounterVec("blobseer_rpc_server_panics_total",
			"Handler panics recovered into error responses, by role and method.",
			[]string{"role", "method"}),
		cliLatency: metrics.NewHistogramVec("blobseer_rpc_client_roundtrip_seconds",
			"Client-side call round-trip latency (including transparent redials) by role and method.",
			[]string{"role", "method"}, metrics.DefLatencyBuckets),
		cliErrors: metrics.NewCounterVec("blobseer_rpc_client_errors_total",
			"Failed client calls by role and method.",
			[]string{"role", "method"}),
		cliRedials: metrics.NewCounterVec("blobseer_rpc_client_redials_total",
			"Transparent redials of known-dead cached connections, by role.",
			[]string{"role"}),
	}
	reg.MustRegister(m.srvLatency, m.srvBytesIn, m.srvBytesOut, m.srvErrors, m.srvPanics,
		m.cliLatency, m.cliErrors, m.cliRedials)
	return m
}

type serverObserver struct {
	m    *RPCMetrics
	role string
}

func (o serverObserver) ObserveRequest(method string, bytesIn, bytesOut int, dur time.Duration, err error, panicked bool) {
	o.m.srvLatency.With(o.role, method).Observe(dur.Seconds())
	o.observeRest(method, bytesIn, bytesOut, err, panicked)
}

// ObserveRequestTraced implements rpc.TracedServerObserver: requests
// carrying a sampled trace pin their trace id as the latency bucket's
// exemplar, so a bad tail links straight to a stitchable trace.
func (o serverObserver) ObserveRequestTraced(method string, bytesIn, bytesOut int, dur time.Duration, err error, panicked bool, traceID uint64) {
	o.m.srvLatency.With(o.role, method).ObserveWithExemplar(dur.Seconds(), traceID)
	o.observeRest(method, bytesIn, bytesOut, err, panicked)
}

func (o serverObserver) observeRest(method string, bytesIn, bytesOut int, err error, panicked bool) {
	o.m.srvBytesIn.With(o.role, method).Add(int64(bytesIn))
	o.m.srvBytesOut.With(o.role, method).Add(int64(bytesOut))
	if err != nil {
		o.m.srvErrors.With(o.role, method).Add(1)
	}
	if panicked {
		o.m.srvPanics.With(o.role, method).Add(1)
	}
}

// ServerObserver returns an rpc.ServerObserver recording under the given
// role label (also an rpc.TracedServerObserver, feeding exemplars).
func (m *RPCMetrics) ServerObserver(role string) rpc.ServerObserver {
	return serverObserver{m: m, role: role}
}

type clientObserver struct {
	m    *RPCMetrics
	role string
}

func (o clientObserver) ObserveCall(addr, method string, dur time.Duration, err error) {
	o.m.cliLatency.With(o.role, method).Observe(dur.Seconds())
	if err != nil {
		o.m.cliErrors.With(o.role, method).Add(1)
	}
}

func (o clientObserver) ObserveRedial(addr string) {
	o.m.cliRedials.With(o.role).Add(1)
}

// ClientObserver returns an rpc.ClientObserver recording under the given
// role label.
func (m *RPCMetrics) ClientObserver(role string) rpc.ClientObserver {
	return clientObserver{m: m, role: role}
}

func u(v uint64) float64 { return float64(v) }

// RegisterVManager exposes the version manager's GC, repair, lease and
// journal totals. mgr is an accessor so restart-in-place harnesses can
// swap the instance under a live registry.
func RegisterVManager(reg *metrics.Registry, mgr func() *vmanager.Manager) {
	gcL := []metrics.Label{{Name: "role", Value: "vmanager"}}
	reg.MustRegister(
		metrics.CounterFunc("blobseer_gc_reclaimed_chunks_total",
			"Chunk replicas reclaimed by GC sweeps.", gcL, func() float64 { return u(mgr().GCStats().Chunks) }),
		metrics.CounterFunc("blobseer_gc_reclaimed_bytes_total",
			"Payload bytes reclaimed by GC sweeps.", gcL, func() float64 { return u(mgr().GCStats().Bytes) }),
		metrics.CounterFunc("blobseer_gc_reclaimed_nodes_total",
			"Metadata tree nodes reclaimed by GC sweeps.", gcL, func() float64 { return u(mgr().GCStats().Nodes) }),
		metrics.CounterFunc("blobseer_gc_reclaimed_orphans_total",
			"Aborted-write orphan chunks reclaimed by GC sweeps.", gcL, func() float64 { return u(mgr().GCStats().Orphans) }),
		metrics.CounterFunc("blobseer_gc_pruned_versions_total",
			"Blob versions fully reclaimed (pruned past the retention floor).", gcL, func() float64 { return u(mgr().GCStats().PrunedVersions) }),
		metrics.GaugeFunc("blobseer_gc_pending_blobs",
			"Blobs with reclamation work outstanding.", gcL, func() float64 { return u(mgr().GCStats().PendingBlobs) }),

		metrics.CounterFunc("blobseer_repair_passes_total",
			"Completed self-healing repair passes (all engines reporting here).", gcL, func() float64 { return u(mgr().RepairStats().Passes) }),
		metrics.CounterFunc("blobseer_repair_chunks_scanned_total",
			"Live-chunk placement records examined by repair passes.", gcL, func() float64 { return u(mgr().RepairStats().ChunksScanned) }),
		metrics.CounterFunc("blobseer_repair_rereplicated_total",
			"Replica copies recreated on fresh providers.", gcL, func() float64 { return u(mgr().RepairStats().ReReplicated) }),
		metrics.CounterFunc("blobseer_repair_migrated_total",
			"Chunks moved off overfull providers by the rebalancer.", gcL, func() float64 { return u(mgr().RepairStats().Migrated) }),
		metrics.CounterFunc("blobseer_repair_bytes_moved_total",
			"Payload bytes copied by re-replication and rebalance.", gcL, func() float64 { return u(mgr().RepairStats().BytesMoved) }),
		metrics.CounterFunc("blobseer_repair_leaves_patched_total",
			"Metadata leaf descriptors rewritten to new placements.", gcL, func() float64 { return u(mgr().RepairStats().LeavesPatched) }),
		metrics.GaugeFunc("blobseer_repair_lost_chunks",
			"Chunks with no surviving replica (unrecoverable until a provider returns).", gcL, func() float64 { return u(mgr().RepairStats().LostChunks) }),
		metrics.CounterFunc("blobseer_repair_errors_total",
			"Per-blob repair failures (retried next pass).", gcL, func() float64 { return u(mgr().RepairStats().Errors) }),
		metrics.CounterFunc("blobseer_repair_corrupt_purged_total",
			"Quarantined corrupt replicas deleted after a verified copy replaced them.", gcL, func() float64 { return u(mgr().RepairStats().CorruptPurged) }),

		metrics.CounterFunc("blobseer_scrub_passes_total",
			"Completed scrub passes (all engines reporting here).", gcL, func() float64 { return u(mgr().ScrubStats().Passes) }),
		metrics.CounterFunc("blobseer_scrub_chunks_scanned_total",
			"Chunk replicas verified against their digests by scrub passes.", gcL, func() float64 { return u(mgr().ScrubStats().ChunksScanned) }),
		metrics.CounterFunc("blobseer_scrub_bytes_scanned_total",
			"Payload bytes read back and verified by scrub passes.", gcL, func() float64 { return u(mgr().ScrubStats().BytesScanned) }),
		metrics.CounterFunc("blobseer_scrub_corrupt_found_total",
			"Replicas that failed verification during a scrub (quarantined for repair).", gcL, func() float64 { return u(mgr().ScrubStats().CorruptFound) }),
		metrics.CounterFunc("blobseer_scrub_backfilled_total",
			"Legacy digestless chunks whose digest was minted by a scrub.", gcL, func() float64 { return u(mgr().ScrubStats().Backfilled) }),
		metrics.CounterFunc("blobseer_scrub_errors_total",
			"Per-provider scrub failures (retried next pass).", gcL, func() float64 { return u(mgr().ScrubStats().Errors) }),

		metrics.GaugeFunc("blobseer_lease_ttl_seconds",
			"Configured write-lease TTL (0 = leases disabled).", gcL, func() float64 { return float64(mgr().LeaseStats().TTLMs) / 1000 }),
		metrics.GaugeFunc("blobseer_lease_active",
			"Unfinished versions currently holding a write lease.", gcL, func() float64 { return u(mgr().LeaseStats().Active) }),
		metrics.CounterFunc("blobseer_lease_granted_total",
			"Write leases granted on Assign.", gcL, func() float64 { return u(mgr().LeaseStats().Granted) }),
		metrics.CounterFunc("blobseer_lease_renewed_total",
			"Write-lease renewals.", gcL, func() float64 { return u(mgr().LeaseStats().Renewed) }),
		metrics.CounterFunc("blobseer_lease_expired_total",
			"Write leases expired (version auto-aborted server-side).", gcL, func() float64 { return u(mgr().LeaseStats().Expired) }),
	)
	RegisterWAL(reg, "vmanager", func() durable.LogStats { return mgr().JournalStats() })
}

// RegisterVManagerHA exposes one version-manager instance's
// high-availability view: role, epoch, stream position and replication
// lag. Registered per instance (labeled by address) because the whole
// point of the series is watching leadership move between instances and
// standbys fall behind. mgr is an accessor so kill/restart harnesses can
// swap the instance under a live registry.
func RegisterVManagerHA(reg *metrics.Registry, instance string, mgr func() *vmanager.Manager) {
	l := []metrics.Label{{Name: "role", Value: "vmanager"}, {Name: "instance", Value: instance}}
	st := func() *vmanager.HAStatusResp { return mgr().HAStatus() }
	reg.MustRegister(
		metrics.GaugeFunc("blobseer_vm_ha_is_leader",
			"1 while this instance holds version-manager leadership.", l, func() float64 {
				if st().Role == "leader" {
					return 1
				}
				return 0
			}),
		metrics.GaugeFunc("blobseer_vm_ha_epoch",
			"Newest leadership epoch this instance has adopted (fencing token).", l,
			func() float64 { return u(st().Epoch) }),
		metrics.CounterFunc("blobseer_vm_ha_takeovers_total",
			"Times this instance assumed leadership.", l, func() float64 { return u(st().Takeovers) }),
		metrics.CounterFunc("blobseer_vm_ha_fences_total",
			"Times this instance was deposed by a higher epoch.", l, func() float64 { return u(st().Fences) }),
		metrics.CounterFunc("blobseer_vm_ha_noquorum_commits_total",
			"Quorum-mode commits acknowledged with zero standby acks — rising means the zero-loss guarantee is degraded.", l,
			func() float64 { return u(st().NoQuorumCommits) }),
		metrics.GaugeFunc("blobseer_vm_ha_stream_seq",
			"Replication stream position: records shipped (leader) or applied (standby).", l,
			func() float64 { return u(st().StreamSeq) }),
		metrics.GaugeFunc("blobseer_vm_ha_synced_standbys",
			"Standbys currently inside the leader's commit gate (0 on standbys).", l, func() float64 {
				n := 0
				for _, s := range st().Standbys {
					if s.Synced {
						n++
					}
				}
				return float64(n)
			}),
		metrics.GaugeFunc("blobseer_vm_ha_repl_lag_records",
			"Records the slowest synced standby trails the leader's stream by (0 on standbys).", l,
			func() float64 {
				s := st()
				var lag uint64
				for _, sb := range s.Standbys {
					if sb.Synced && s.StreamSeq > sb.AckSeq && s.StreamSeq-sb.AckSeq > lag {
						lag = s.StreamSeq - sb.AckSeq
					}
				}
				return u(lag)
			}),
	)
}

// RegisterWAL exposes one durable.Log's append/write/fsync counters under
// the given instance label. stats is called at scrape time, so a volatile
// deployment can pass a function returning zeros.
func RegisterWAL(reg *metrics.Registry, instance string, stats func() durable.LogStats) {
	l := []metrics.Label{{Name: "instance", Value: instance}}
	reg.MustRegister(
		metrics.CounterFunc("blobseer_wal_appends_total",
			"WAL records acknowledged as durable.", l, func() float64 { return u(stats().Appends) }),
		metrics.CounterFunc("blobseer_wal_writes_total",
			"WAL file writes (one per group-commit batch).", l, func() float64 { return u(stats().Writes) }),
		metrics.CounterFunc("blobseer_wal_syncs_total",
			"WAL fsyncs (group commit coalesces appends into these).", l, func() float64 { return u(stats().Syncs) }),
	)
}

// RegisterProvider exposes one data provider's inventory and transfer
// counters (and, for cached stores, cache effectiveness) under the given
// instance label. srv is an accessor so crash/revive harnesses can swap
// the instance under a live registry.
func RegisterProvider(reg *metrics.Registry, instance string, srv func() *provider.Server) {
	l := []metrics.Label{{Name: "instance", Value: instance}}
	snap := func() provider.StatsResp { return srv().StatsSnapshot() }
	reg.MustRegister(
		metrics.GaugeFunc("blobseer_provider_chunks",
			"Chunk replicas resident on the provider.", l, func() float64 { return u(snap().Chunks) }),
		metrics.GaugeFunc("blobseer_provider_bytes",
			"Payload bytes resident on the provider.", l, func() float64 { return u(snap().Bytes) }),
		metrics.CounterFunc("blobseer_provider_puts_total",
			"Individual chunks stored (across put and putchunks).", l, func() float64 { return u(snap().Puts) }),
		metrics.CounterFunc("blobseer_provider_gets_total",
			"Individual chunk retrievals served (across get and getchunks).", l, func() float64 { return u(snap().Gets) }),
		metrics.CounterFunc("blobseer_provider_deletes_total",
			"Chunk deletions applied.", l, func() float64 { return u(snap().Deletes) }),
		metrics.CounterFunc("blobseer_provider_put_batches_total",
			"putchunks RPCs served (puts/put_batches is the write coalescing factor).", l, func() float64 { return u(snap().PutBatches) }),
		metrics.CounterFunc("blobseer_provider_get_batches_total",
			"getchunks RPCs served (repair source reads).", l, func() float64 { return u(snap().GetBatches) }),
		metrics.CounterFunc("blobseer_provider_bytes_in_total",
			"Payload bytes accepted by puts.", l, func() float64 { return u(snap().BytesIn) }),
		metrics.CounterFunc("blobseer_provider_bytes_out_total",
			"Payload bytes served by gets (ranged reads move only what they need).", l, func() float64 { return u(snap().BytesOut) }),
		metrics.CounterFunc("blobseer_chunk_verifications_total",
			"Full-chunk digest checks performed (reads, ingest and scrub).", l, func() float64 { return u(snap().Verified) }),
		metrics.CounterFunc("blobseer_chunk_corruption_total",
			"Chunk copies that failed a digest check (each counted once, at quarantine).", l, func() float64 { return u(snap().Corrupt) }),
		metrics.GaugeFunc("blobseer_chunk_quarantined",
			"Chunk copies currently quarantined awaiting repair and deletion.", l, func() float64 { return u(snap().Quarantined) }),
		metrics.CounterFunc("blobseer_chunk_digest_backfilled_total",
			"Legacy digestless chunks whose digest was minted on first clean read.", l, func() float64 { return u(snap().Backfilled) }),
	)
	if cs, ok := srv().Store().(interface {
		CacheStats() (hits, misses, residentBytes int64)
		RangeAdmits() int64
	}); ok {
		reg.MustRegister(
			metrics.CounterFunc("blobseer_provider_cache_hits_total",
				"Chunk cache hits.", l, func() float64 { h, _, _ := cs.CacheStats(); return float64(h) }),
			metrics.CounterFunc("blobseer_provider_cache_misses_total",
				"Chunk cache misses.", l, func() float64 { _, m, _ := cs.CacheStats(); return float64(m) }),
			metrics.GaugeFunc("blobseer_provider_cache_resident_bytes",
				"Bytes resident in the chunk cache.", l, func() float64 { _, _, r := cs.CacheStats(); return float64(r) }),
			metrics.CounterFunc("blobseer_provider_cache_range_admits_total",
				"Chunks promoted to full admission by range-miss frequency.", l, func() float64 { return float64(cs.RangeAdmits()) }),
		)
	}
}

// RegisterPManager exposes cluster membership and per-provider fullness as
// the provider manager sees it.
func RegisterPManager(reg *metrics.Registry, mgr *pmanager.Manager) {
	role := []metrics.Label{{Name: "role", Value: "pmanager"}}
	count := func(pred func(pmanager.ProviderStatus) bool) float64 {
		var n float64
		for _, p := range mgr.Report() {
			if pred(p) {
				n++
			}
		}
		return n
	}
	reg.MustRegister(
		metrics.GaugeFunc("blobseer_pm_providers_registered",
			"Providers ever registered with the provider manager.", role,
			func() float64 { return count(func(pmanager.ProviderStatus) bool { return true }) }),
		metrics.GaugeFunc("blobseer_pm_providers_live",
			"Providers within the heartbeat liveness timeout.", role,
			func() float64 { return count(func(p pmanager.ProviderStatus) bool { return p.Live }) }),
		metrics.GaugeFunc("blobseer_pm_providers_avoided",
			"Providers on the GloBeM avoid list.", role,
			func() float64 { return count(func(p pmanager.ProviderStatus) bool { return p.Avoided }) }),
		&pmFullnessCollector{mgr: mgr},
	)
}

// pmFullnessCollector emits one fullness gauge per registered provider —
// the series set follows membership, so it cannot be a fixed GaugeFunc.
type pmFullnessCollector struct {
	mgr *pmanager.Manager
}

func (c *pmFullnessCollector) Family() metrics.Family {
	return metrics.Family{
		Name: "blobseer_pm_provider_fullness",
		Help: "Provider fullness (bytes/capacity; 0 when capacity is unknown) as the provider manager sees it.",
		Type: "gauge",
	}
}

func (c *pmFullnessCollector) Collect(emit func(metrics.Sample)) {
	for _, p := range c.mgr.Report() {
		var fullness float64
		if p.CapBytes > 0 {
			fullness = float64(p.Bytes) / float64(p.CapBytes)
		}
		emit(metrics.Sample{
			Labels: []metrics.Label{{Name: "provider", Value: p.Addr}},
			Value:  fullness,
		})
	}
}

// RegisterMeta exposes one metadata provider's node count (and, when its
// store is persistent, node-log WAL costs) under the given instance
// label. srv is an accessor so restart-in-place harnesses can swap the
// instance under a live registry.
func RegisterMeta(reg *metrics.Registry, instance string, srv func() *meta.Server) {
	l := []metrics.Label{{Name: "instance", Value: instance}}
	reg.MustRegister(
		metrics.GaugeFunc("blobseer_meta_nodes",
			"Metadata tree nodes resident on the provider.", l, func() float64 { return float64(srv().NodeCount()) }),
	)
	persistent := func() *meta.PersistentStore {
		ps, _ := srv().Store().(*meta.PersistentStore)
		return ps
	}
	if persistent() != nil {
		RegisterWAL(reg, instance, func() durable.LogStats {
			if ps := persistent(); ps != nil {
				return ps.LogStats()
			}
			return durable.LogStats{}
		})
	}
}

// RegisterCoreClient exposes one core client's data-plane and
// metadata-plane counters under the given instance label — what the load
// blaster and the cluster harness surface about their own traffic.
func RegisterCoreClient(reg *metrics.Registry, instance string, cli *core.Client) {
	l := []metrics.Label{{Name: "instance", Value: instance}}
	io := cli.IOStats
	ms := cli.MetaRPCStats
	reg.MustRegister(
		metrics.CounterFunc("blobseer_client_chunk_get_rpcs_total",
			"provider.get calls issued (including failed replicas).", l, func() float64 { return float64(io().ChunkGetRPCs) }),
		metrics.CounterFunc("blobseer_client_chunk_put_ops_total",
			"Per-chunk-per-replica store operations issued.", l, func() float64 { return float64(io().ChunkPutOps) }),
		metrics.CounterFunc("blobseer_client_chunk_put_rpcs_total",
			"provider.putchunks round trips issued.", l, func() float64 { return float64(io().ChunkPutRPCs) }),
		metrics.CounterFunc("blobseer_client_chunk_bytes_in_total",
			"Payload bytes received from providers.", l, func() float64 { return float64(io().ChunkBytesIn) }),
		metrics.CounterFunc("blobseer_client_chunk_bytes_out_total",
			"Payload bytes sent to providers.", l, func() float64 { return float64(io().ChunkBytesOut) }),
		metrics.CounterFunc("blobseer_client_chunk_corrupt_reads_total",
			"Replica reads rejected client-side by the end-to-end digest check (failed over).", l, func() float64 { return float64(io().ChunkCorruptReads) }),
		metrics.CounterFunc("blobseer_client_meta_get_rpcs_total",
			"Singleton meta.get calls issued.", l, func() float64 { return float64(ms().GetRPCs) }),
		metrics.CounterFunc("blobseer_client_meta_getnodes_rpcs_total",
			"Batched meta.getnodes calls issued.", l, func() float64 { return float64(ms().GetNodesRPCs) }),
		metrics.CounterFunc("blobseer_client_meta_put_rpcs_total",
			"meta.put calls issued (one per provider batch).", l, func() float64 { return float64(ms().PutRPCs) }),
		metrics.CounterFunc("blobseer_client_meta_spec_hits_total",
			"Speculative same-label descent keys that resolved.", l, func() float64 { return float64(ms().SpecHits) }),
		metrics.CounterFunc("blobseer_client_meta_spec_misses_total",
			"Speculative same-label descent keys that came back absent.", l, func() float64 { return float64(ms().SpecMisses) }),
		metrics.CounterFunc("blobseer_client_meta_cache_hits_total",
			"Client-side metadata cache hits.", l, func() float64 { return float64(ms().CacheHits) }),
		metrics.CounterFunc("blobseer_client_meta_cache_misses_total",
			"Client-side metadata cache misses.", l, func() float64 { return float64(ms().CacheMisses) }),
	)
}
