GO ?= go
FUZZTIME ?= 10s
BENCHTIME ?= 1x

.PHONY: all build vet test race fuzz bench e2e-restart e2e-repair e2e-lease e2e-failover e2e-scrub e2e-trace soak-smoke ci clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Each fuzz target must run in its own invocation (go test allows one
# -fuzz pattern per package at a time).
fuzz:
	$(GO) test -fuzz=FuzzDecoder -fuzztime=$(FUZZTIME) ./internal/wire/
	$(GO) test -fuzz=FuzzRoundTrip -fuzztime=$(FUZZTIME) ./internal/wire/
	$(GO) test -fuzz=FuzzNodeDecode -fuzztime=$(FUZZTIME) ./internal/meta/
	$(GO) test -fuzz=FuzzWriteDescDecode -fuzztime=$(FUZZTIME) ./internal/meta/
	$(GO) test -fuzz=FuzzPutNodesReqDecode -fuzztime=$(FUZZTIME) ./internal/meta/
	$(GO) test -fuzz=FuzzPatchReplicasReqDecode -fuzztime=$(FUZZTIME) ./internal/meta/
	$(GO) test -fuzz=FuzzWALReplay -fuzztime=$(FUZZTIME) ./internal/durable/
	$(GO) test -fuzz=FuzzWALFrame -fuzztime=$(FUZZTIME) ./internal/durable/
	$(GO) test -fuzz=FuzzCoalescedBatchTear -fuzztime=$(FUZZTIME) ./internal/durable/
	$(GO) test -fuzz=FuzzLeaseRecordReplay -fuzztime=$(FUZZTIME) ./internal/vmanager/
	$(GO) test -fuzz=FuzzReplicationDivergence -fuzztime=$(FUZZTIME) ./internal/vmanager/
	$(GO) test -fuzz=FuzzDigestWireDecode -fuzztime=$(FUZZTIME) ./internal/provider/
	$(GO) test -fuzz=FuzzTraceTrailer -fuzztime=$(FUZZTIME) ./internal/rpc/

# Macro-benchmark smoke test: one iteration of every reconstructed
# experiment (E1-E14, including the E14 repair-under-churn bench) keeps
# the bench harness from rotting; raise BENCHTIME (and add -count) when
# measuring for real. BENCH_baseline.json / BENCH_after.json record the
# E1/E4 before/after of the metadata-batching refactor (PR 3);
# BENCH_baseline_pr4.json / BENCH_after_pr4.json record the E13
# before/after of the write-plane batching + WAL group commit (PR 4);
# BENCH_baseline_pr5.json / BENCH_after_pr5.json record the E14
# degraded-vs-repaired numbers of the self-healing repair engine (PR 5);
# BENCH_baseline_pr9.json / BENCH_after_pr9.json record the E1
# before/after of verify-on-read chunk integrity (PR 9, gate <=3%).
bench:
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) .

# Crash-recovery end-to-end suite: kill -9 + restart of the version
# manager and metadata providers, in-harness (mid-write-storm) and as real
# OS processes, under the race detector.
e2e-restart:
	$(GO) test -race -count=1 -run 'TestCrashRecoveryMidWriteStorm|TestRestartVolatileVMComesBackEmpty' ./internal/fault/
	$(GO) test -race -count=1 -run 'TestDaemonCrashRecovery' ./cmd/blobseerd/

# Self-healing end-to-end suite: kill-one-provider re-replication with
# batched-RPC bounds, watermark rebalance with stale-cache reader
# recovery, stray-replica GC after a dead provider returns, and durable
# provider sidecar restarts.
e2e-repair:
	$(GO) test -race -count=1 ./internal/repair/
	$(GO) test -race -count=1 -run 'TestSidecar' ./internal/provider/

# Writer-lease end-to-end suite: writers kill -9'd between Assign and
# Commit and mid-upload must not wedge the publish frontier — lease expiry
# aborts them, weaves their identity trees server-side, un-parks the
# orphan sweep, and refuses late commits with a typed error.
e2e-lease:
	$(GO) test -race -count=1 -run 'TestWriterLease' ./internal/fault/

# Control-plane failover end-to-end suite: the version-manager leader
# kill -9'd mid-write-storm with a quorum standby; writes must resume
# within 2x the leadership TTL, zero committed versions may be lost, and
# the rejoining ex-leader must come back fenced (typed not-leader
# redirects) and resync to a byte-identical state digest. Plus the
# replication unit suite: convergence, synchronous quorum, divergent
# journal-tail truncation.
e2e-failover:
	$(GO) test -race -count=1 -run 'TestFailoverMidWriteStorm|TestStandbyCrashDoesNotBlockCommits' -timeout 10m ./internal/fault/
	$(GO) test -race -count=1 -run 'TestReplication|TestQuorum|TestFailover|TestDivergent|TestRebooted' ./internal/vmanager/

# Chunk-integrity end-to-end suite, under the race detector: with one
# replica bit-rotted, concurrent readers must fail over without ever
# seeing wrong bytes, and one scrub pass (RAM and disk engines) must
# quarantine the rot, re-replicate from a verified survivor, and purge the
# bad copy. Plus the provider-local verification unit suite.
e2e-scrub:
	$(GO) test -race -count=1 -run 'TestCorruptReplicaReadFailover|TestScrubRestoresDegree' ./internal/fault/
	$(GO) test -race -count=1 -run 'TestGetQuarantinesCorruptCopy|TestIngestRejectsCorruptPut|TestLegacyChunkBackfilledOnRead|TestVerifyChunkRecheck|TestScrubStepBudgetAndResume|TestSidecarDigestReplayAndTornFileBootCheck' ./internal/provider/

# Distributed-tracing end-to-end suite, under the race detector: a
# sampled 256-chunk cold read must land client/vmanager/metadata/provider
# spans under one trace id; the trace must survive a leader failover
# (redirect) and metadata/provider restart-in-place (tracer re-attach);
# background planes must originate their own root traces; plus the
# ring-buffer race hammer and the trace-trailer unit suite.
e2e-trace:
	$(GO) test -race -count=1 -run 'TestTrace|TestBackgroundPlanes' ./internal/cluster/
	$(GO) test -race -count=1 ./internal/trace/ ./internal/rpc/

# Open-loop soak smoke: 10 seconds of blaster traffic (read/write mix,
# zipf popularity) against a full in-process cluster with the metrics
# plane on. Fails on an error-budget breach (>1% errored ops) or a rate
# collapse. SOAK_SECS stretches it into a longer soak.
SOAK_SECS ?= 10
soak-smoke:
	BLASTER_SOAK_SECS=$(SOAK_SECS) $(GO) test -race -count=1 -run 'TestSoakSmoke' -timeout 10m ./internal/blaster/

ci: vet build race fuzz bench e2e-restart e2e-repair e2e-lease e2e-failover e2e-scrub e2e-trace soak-smoke

clean:
	$(GO) clean -testcache
