GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race fuzz ci clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Each fuzz target must run in its own invocation (go test allows one
# -fuzz pattern per package at a time).
fuzz:
	$(GO) test -fuzz=FuzzDecoder -fuzztime=$(FUZZTIME) ./internal/wire/
	$(GO) test -fuzz=FuzzRoundTrip -fuzztime=$(FUZZTIME) ./internal/wire/
	$(GO) test -fuzz=FuzzNodeDecode -fuzztime=$(FUZZTIME) ./internal/meta/
	$(GO) test -fuzz=FuzzWriteDescDecode -fuzztime=$(FUZZTIME) ./internal/meta/
	$(GO) test -fuzz=FuzzPutNodesReqDecode -fuzztime=$(FUZZTIME) ./internal/meta/

ci: vet build race fuzz

clean:
	$(GO) clean -testcache
