// Macro-benchmarks: one per reconstructed figure/table of the BlobSeer
// evaluation (see DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured results). Each benchmark iteration runs
// the full experiment at reduced scale and reports the headline metric via
// b.ReportMetric; `go run ./cmd/blobseer-bench` prints the complete tables
// at full scale.
package blobseer_test

import (
	"testing"

	"repro/internal/bench"
)

// benchScale keeps every macro-benchmark iteration in the hundreds of
// milliseconds; cmd/blobseer-bench runs the full scale.
const benchScale = 0.12

func runExperiment(b *testing.B, id string, metric func(*bench.Result) (float64, string)) {
	b.Helper()
	e, err := bench.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := e.Run(bench.Options{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		if v, unit := metric(res); unit != "" {
			b.ReportMetric(v, unit)
		}
	}
}

// lastOf reports the metric of the last row of the given series (the
// highest-X sweep point).
func lastOf(series string) func(*bench.Result) (float64, string) {
	return func(r *bench.Result) (float64, string) {
		for i := len(r.Rows) - 1; i >= 0; i-- {
			if r.Rows[i].Series == series {
				return r.Rows[i].Value, "MB/s"
			}
		}
		return 0, ""
	}
}

func BenchmarkE1ConcurrentReaders(b *testing.B) {
	runExperiment(b, "E1", lastOf("blobseer"))
}

func BenchmarkE2ConcurrentWriters(b *testing.B) {
	runExperiment(b, "E2", lastOf("blobseer"))
}

func BenchmarkE3ConcurrentAppenders(b *testing.B) {
	runExperiment(b, "E3", lastOf("blobseer"))
}

func BenchmarkE4MetadataOverhead(b *testing.B) {
	runExperiment(b, "E4", func(r *bench.Result) (float64, string) {
		for i := len(r.Rows) - 1; i >= 0; i-- {
			if r.Rows[i].Series == "no-cache" {
				return r.Rows[i].Value, "ms-nocache"
			}
		}
		return 0, ""
	})
}

func BenchmarkE5DataStriping(b *testing.B) {
	runExperiment(b, "E5", lastOf("blobseer"))
}

func BenchmarkE6MetadataDecentralization(b *testing.B) {
	runExperiment(b, "E6", lastOf("blobseer"))
}

func BenchmarkE7ChunkSize(b *testing.B) {
	runExperiment(b, "E7", lastOf("blobseer"))
}

func BenchmarkE8ReadersUnderWriters(b *testing.B) {
	runExperiment(b, "E8", lastOf("blobseer"))
}

func BenchmarkE9BSFSvsHDFS(b *testing.B) {
	runExperiment(b, "E9", func(r *bench.Result) (float64, string) {
		for _, row := range r.Rows {
			if row.Series == "bsfs" && row.XLabel == "concurrent-append" {
				return row.Value, "MB/s-bsfs-append"
			}
		}
		return 0, ""
	})
}

func BenchmarkE10MapReduce(b *testing.B) {
	runExperiment(b, "E10", func(r *bench.Result) (float64, string) {
		for _, row := range r.Rows {
			if row.Series == "bsfs" && row.XLabel == "wordcount" {
				return row.Value, "s-wordcount"
			}
		}
		return 0, ""
	})
}

func BenchmarkE11QoSFailures(b *testing.B) {
	runExperiment(b, "E11", func(r *bench.Result) (float64, string) {
		for _, row := range r.Rows {
			if row.Series == "repl=3+globem" && row.XLabel == "mean-throughput" {
				return row.Value, "MB/s-globem"
			}
		}
		return 0, ""
	})
}

func BenchmarkE12SnapshotReads(b *testing.B) {
	runExperiment(b, "E12", lastOf("blobseer"))
}

func BenchmarkE13DurableWriters(b *testing.B) {
	runExperiment(b, "E13", lastOf("blobseer"))
}

func BenchmarkE14RepairChurn(b *testing.B) {
	runExperiment(b, "E14", func(r *bench.Result) (float64, string) {
		for _, row := range r.Rows {
			if row.Series == "repair-throughput" {
				return row.Value, "MB/s-repair"
			}
		}
		return 0, ""
	})
}
