// Tests of the public facade: the API a downstream user actually imports.
package blobseer_test

import (
	"bytes"
	"errors"
	"testing"

	blobseer "repro"
)

func TestPublicQuickstartFlow(t *testing.T) {
	cluster, err := blobseer.Deploy(blobseer.DeployOptions{DataProviders: 4, MetaProviders: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	client, err := cluster.NewClient(blobseer.ClientOptions{MetaCacheNodes: 256})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := client.CreateBlob(1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := blob.Write([]byte("hello world"), 0)
	if err != nil {
		t.Fatal(err)
	}
	v2, _, err := blob.Append([]byte("!"))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 12)
	if _, err := blob.Read(v2, buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello world!" {
		t.Errorf("v2 = %q", buf)
	}
	short := make([]byte, 11)
	if _, err := blob.Read(v1, short, 0); err != nil {
		t.Fatal(err)
	}
	if string(short) != "hello world" {
		t.Errorf("v1 = %q", short)
	}
}

func TestPublicErrorsExported(t *testing.T) {
	if blobseer.ErrNotPublished == nil || blobseer.ErrFailedVersion == nil {
		t.Fatal("exported errors are nil")
	}
	if errors.Is(blobseer.ErrNotPublished, blobseer.ErrFailedVersion) {
		t.Fatal("exported errors not distinct")
	}
}

func TestPublicShapedDeploy(t *testing.T) {
	fabric := blobseer.NewFabric(blobseer.FabricConfig{BandwidthBps: 100e6})
	cluster, err := blobseer.Deploy(blobseer.DeployOptions{DataProviders: 2, Fabric: fabric})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	client, err := cluster.NewClient(blobseer.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := client.CreateBlob(4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{7}, 64<<10)
	if _, err := blob.Write(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := blob.Read(0, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch over shaped fabric")
	}
	if fabric.NodeStats(cluster.ProviderAddrs()[0]).MsgsIn == 0 {
		t.Error("fabric recorded no traffic at providers")
	}
}
