// Package blobseer is the public API of the BlobSeer reproduction: a
// versioning-based distributed storage service for huge binary objects
// (Nicolae, Antoniu, Bougé — IPDPS 2010).
//
// A blob is a long sequence of bytes striped into fixed-size chunks over
// data providers. Every Write or Append produces a new immutable snapshot
// version (only the difference is stored); readers address any published
// version and never synchronize with writers. Metadata is a distributed
// segment tree spread over a DHT of metadata providers; a lightweight
// version manager totally orders snapshot publication, which makes all
// operations linearizable.
//
// Quick start (in-process deployment):
//
//	c, _ := blobseer.Deploy(blobseer.DeployOptions{DataProviders: 4})
//	defer c.Close()
//	client, _ := c.NewClient(blobseer.ClientOptions{})
//	blob, _ := client.CreateBlob(64<<10, 1)
//	v, _ := blob.Write([]byte("hello"), 0)
//	buf := make([]byte, 5)
//	blob.Read(v, buf, 0)
//
// For multi-process deployments run cmd/blobseerd for each role over TCP
// and connect with NewClient.
//
// # Version retention and garbage collection
//
// Snapshots are immutable but not eternal. Each blob carries a retention
// policy — keep-all (the default) or keep-last-N (Blob.SetRetention) — and
// an explicit Blob.Prune(upTo) makes versions 1..upTo reclaimable at once.
// Both raise the blob's retention floor at the version manager: reads of
// versions below the floor fail immediately with ErrVersionReclaimed (the
// newest published version can never be pruned). Client.DeleteBlob removes
// a blob outright; subsequent operations fail with ErrBlobDeleted.
//
// Raising the floor reclaims no space by itself. A garbage-collection
// sweep (the cluster harness's background loop when DeployOptions.
// GCInterval is set, Cluster.RunGC on demand, or `blobseer-cli gc` against
// a daemon deployment) walks the metadata trees to compute liveness —
// persistent trees share untouched subtrees across versions, so a pruned
// version's node or chunk is dead only when no retained snapshot still
// references it — then deletes dead tree nodes from the metadata providers
// and dead chunks from the data providers. The same sweep reclaims orphan
// chunks left by aborted writes once they outlive a grace period.
// Reclamation totals are reported through Client.GCStats.
//
// Readers racing a prune are safe: a read either returns the version's
// exact bytes or fails whole with ErrVersionReclaimed — never torn data.
//
// # Self-healing repair and rebalance
//
// Replication only survives churn if something restores it. The repair
// engine (internal/repair; the harness's background loop when
// DeployOptions.RepairInterval is set, Cluster.RunRepair on demand, or
// `blobseerd -role repair` / `blobseer-cli repair` against a daemon
// deployment) scans every retained snapshot's placement, re-replicates
// chunks whose replicas sit on dead or avoided providers (batched
// getchunks/putchunks — RPC count tracks providers, not chunks), patches
// the affected leaf descriptors in place so reads stop probing dead
// addresses, and migrates replicas off providers above a fullness
// watermark (capacity declared via heartbeats). Stale client caches
// self-correct: a read whose every listed replica fails refreshes the
// leaf and retries against the patched placement.
//
// # Durability and crash recovery
//
// With DeployOptions.DataDir set (or blobseerd's -dir per role), the
// version manager journals every state transition and metadata providers
// persist their node stores through a write-ahead log (internal/durable):
// a kill -9 loses nothing acknowledged, and a restart — in place via
// Cluster.RestartVM / Cluster.RestartMeta, or by respawning the daemon on
// the same directory — replays the full state. Writes that were in flight
// at crash time are conservatively aborted during recovery, so the
// publish frontier never wedges; their writers observe a commit failure
// and simply retry.
package blobseer

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/rpc"
)

// Core client API, re-exported.
type (
	// Client talks to one BlobSeer deployment.
	Client = core.Client
	// Blob is a handle on one blob.
	Blob = core.Blob
	// Config wires a Client to a deployment (see core.Config).
	Config = core.Config
	// ChunkLocation reports where a chunk lives (locality scheduling).
	ChunkLocation = core.ChunkLocation
	// Observer sees every chunk transfer (QoS monitoring).
	Observer = core.Observer
)

// Deployment helpers, re-exported from the cluster harness.
type (
	// Cluster is a running deployment (in-process or TCP loopback).
	Cluster = cluster.Cluster
	// DeployOptions size a deployment.
	DeployOptions = cluster.Config
	// ClientOptions tune clients created from a Cluster.
	ClientOptions = cluster.ClientOptions
	// FabricConfig shapes the simulated network of a deployment.
	FabricConfig = netsim.Config
)

// GCStats reports deployment-wide reclamation totals (Client.GCStats).
type GCStats = core.GCStats

// Errors re-exported from the client library.
var (
	// ErrNotPublished marks reads of versions that are not yet readable.
	ErrNotPublished = core.ErrNotPublished
	// ErrFailedVersion marks explicit reads of aborted versions.
	ErrFailedVersion = core.ErrFailedVersion
	// ErrVersionReclaimed marks reads of versions below the retention
	// floor: the snapshot has been (or is being) garbage collected.
	ErrVersionReclaimed = core.ErrVersionReclaimed
	// ErrBlobDeleted marks operations on deleted blobs.
	ErrBlobDeleted = core.ErrBlobDeleted
)

// NewClient connects to an existing deployment (for example one started
// with cmd/blobseerd over TCP).
func NewClient(cfg Config) (*Client, error) { return core.NewClient(cfg) }

// Deploy starts a complete deployment in this process: a version manager,
// a provider manager, data providers and metadata providers, over the
// simulated fabric (default) or TCP loopback (opts.UseTCP).
func Deploy(opts DeployOptions) (*Cluster, error) { return cluster.Start(opts) }

// NewFabric builds a simulated network fabric for Deploy, modeling
// per-NIC bandwidth, latency and per-message service cost.
func NewFabric(cfg FabricConfig) *netsim.Fabric { return netsim.NewFabric(cfg) }

// NewTCPNetwork returns the TCP transport for NewClient configs that
// connect to daemon deployments.
func NewTCPNetwork() rpc.Network { return rpc.NewTCPNetwork() }
