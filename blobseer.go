// Package blobseer is the public API of the BlobSeer reproduction: a
// versioning-based distributed storage service for huge binary objects
// (Nicolae, Antoniu, Bougé — IPDPS 2010).
//
// A blob is a long sequence of bytes striped into fixed-size chunks over
// data providers. Every Write or Append produces a new immutable snapshot
// version (only the difference is stored); readers address any published
// version and never synchronize with writers. Metadata is a distributed
// segment tree spread over a DHT of metadata providers; a lightweight
// version manager totally orders snapshot publication, which makes all
// operations linearizable.
//
// Quick start (in-process deployment):
//
//	c, _ := blobseer.Deploy(blobseer.DeployOptions{DataProviders: 4})
//	defer c.Close()
//	client, _ := c.NewClient(blobseer.ClientOptions{})
//	blob, _ := client.CreateBlob(64<<10, 1)
//	v, _ := blob.Write([]byte("hello"), 0)
//	buf := make([]byte, 5)
//	blob.Read(v, buf, 0)
//
// For multi-process deployments run cmd/blobseerd for each role over TCP
// and connect with NewClient.
package blobseer

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/rpc"
)

// Core client API, re-exported.
type (
	// Client talks to one BlobSeer deployment.
	Client = core.Client
	// Blob is a handle on one blob.
	Blob = core.Blob
	// Config wires a Client to a deployment (see core.Config).
	Config = core.Config
	// ChunkLocation reports where a chunk lives (locality scheduling).
	ChunkLocation = core.ChunkLocation
	// Observer sees every chunk transfer (QoS monitoring).
	Observer = core.Observer
)

// Deployment helpers, re-exported from the cluster harness.
type (
	// Cluster is a running deployment (in-process or TCP loopback).
	Cluster = cluster.Cluster
	// DeployOptions size a deployment.
	DeployOptions = cluster.Config
	// ClientOptions tune clients created from a Cluster.
	ClientOptions = cluster.ClientOptions
	// FabricConfig shapes the simulated network of a deployment.
	FabricConfig = netsim.Config
)

// Errors re-exported from the client library.
var (
	// ErrNotPublished marks reads of versions that are not yet readable.
	ErrNotPublished = core.ErrNotPublished
	// ErrFailedVersion marks explicit reads of aborted versions.
	ErrFailedVersion = core.ErrFailedVersion
)

// NewClient connects to an existing deployment (for example one started
// with cmd/blobseerd over TCP).
func NewClient(cfg Config) (*Client, error) { return core.NewClient(cfg) }

// Deploy starts a complete deployment in this process: a version manager,
// a provider manager, data providers and metadata providers, over the
// simulated fabric (default) or TCP loopback (opts.UseTCP).
func Deploy(opts DeployOptions) (*Cluster, error) { return cluster.Start(opts) }

// NewFabric builds a simulated network fabric for Deploy, modeling
// per-NIC bandwidth, latency and per-message service cost.
func NewFabric(cfg FabricConfig) *netsim.Fabric { return netsim.NewFabric(cfg) }

// NewTCPNetwork returns the TCP transport for NewClient configs that
// connect to daemon deployments.
func NewTCPNetwork() rpc.Network { return rpc.NewTCPNetwork() }
